//! MW-SVSS: moderated weak shunning verifiable secret sharing (paper §3.2).
//!
//! One [`Mw`] value is this process's view of one MW-SVSS invocation.
//! The machine is sans-io: inputs are [`MwIn`] (delivered messages and
//! local commands), outputs are [`MwOut`] (sends, broadcasts, DMM
//! registrations, completion/output events). All conditions are evaluated
//! by a monotone `advance` pass after every input, so message arrival
//! order never matters for the final state.
//!
//! Roles in an invocation with `n` processes, dealer `d`, moderator `m`:
//! every process is a potential *monitor* of its polynomial `f_j` and a
//! *confirmer* for everyone else's; `d` additionally deals, `m` moderates.

use std::sync::Arc;

use rand::Rng;
use sba_field::{Domain, Field, Poly};
use sba_net::{MwId, Pid, ProcessSet};

use crate::{Reconstructed, SvssPriv, SvssRbValue, SvssSlot};

/// Inputs to the MW-SVSS state machine.
#[derive(Clone, Debug)]
pub enum MwIn<F> {
    /// Private: dealer's share message (step 1 → step 2 trigger).
    Deal {
        /// The sending process (must be the dealer).
        from: Pid,
        /// `f_1(me), …, f_n(me)`.
        values: Vec<F>,
        /// Coefficients of `f_me`.
        monitor_poly: Vec<F>,
        /// Coefficients of `f` (only meaningful for the moderator).
        moderator_poly: Option<Vec<F>>,
    },
    /// Private: a confirmer's value `f̂^from_me` (step 2 → step 3 trigger).
    Point {
        /// The confirming process.
        from: Pid,
        /// The value it claims the dealer gave it for my polynomial.
        value: F,
    },
    /// Private: a monitor's `f̂_from(0)` sent to the moderator (step 4).
    MonitorValue {
        /// The monitor.
        from: Pid,
        /// `f̂_from(0)`.
        value: F,
    },
    /// RB delivery: `ack` from `origin` (step 2).
    AckDelivered {
        /// The acknowledging process.
        origin: Pid,
    },
    /// RB delivery: `L̂_origin` (step 4).
    LDelivered {
        /// The monitor that broadcast its confirmer set.
        origin: Pid,
        /// The set.
        set: ProcessSet,
    },
    /// RB delivery: `M̂` (step 6; only valid from the moderator).
    MDelivered {
        /// The broadcaster (checked against the moderator).
        origin: Pid,
        /// The set.
        set: ProcessSet,
    },
    /// RB delivery: `OK` (step 7; only valid from the dealer).
    OkDelivered {
        /// The broadcaster (checked against the dealer).
        origin: Pid,
    },
    /// RB delivery: reconstruct point — `origin` claims `f_poly(origin) =
    /// value` (reconstruct step 1).
    ReconDelivered {
        /// The broadcasting confirmer.
        origin: Pid,
        /// Whose polynomial the point belongs to.
        poly: Pid,
        /// The value.
        value: F,
    },
}

/// Outputs of the MW-SVSS state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MwOut<F> {
    /// Send a private message.
    Send(Pid, SvssPriv<F>),
    /// Reliably broadcast `value` in `slot`.
    Broadcast(SvssSlot, SvssRbValue<F>),
    /// Register a dealer-side DMM expectation (share step 7).
    RegisterAck {
        /// Expected broadcaster.
        broadcaster: Pid,
        /// Polynomial index the broadcast is about.
        poly: Pid,
        /// Expected value.
        expected: F,
    },
    /// Register a monitor-side DMM expectation (share step 3).
    RegisterDeal {
        /// Expected broadcaster.
        broadcaster: Pid,
        /// Expected value of my polynomial at the broadcaster's index.
        expected: F,
    },
    /// Drop all DEAL expectations for this session (share step 8).
    DropDealEntries,
    /// The share protocol `S′` completed at this process (step 9).
    ShareCompleted,
    /// The reconstruct protocol `R′` produced an output (step 4 of `R′`).
    Output(Reconstructed<F>),
}

/// This process's state in one MW-SVSS invocation.
#[derive(Clone, Debug)]
pub struct Mw<F: Field> {
    id: MwId,
    me: Pid,
    n: usize,
    t: usize,
    /// Shared per-instance evaluation domain (points `1..=n`).
    domain: Arc<Domain<F>>,

    // Dealer-only: the true polynomials f, f_1..f_n.
    dealer_polys: Option<(Poly<F>, Vec<Poly<F>>)>,
    ok_sent: bool,

    // Every process: what the dealer sent me (step 1).
    my_values: Option<Vec<F>>,
    my_poly: Option<Poly<F>>,
    /// `my_poly` evaluated at every process index (computed once; step 3
    /// re-checks these on every monotone advance).
    my_evals: Vec<F>,
    acked: bool,

    // Step 3 state: first point per confirmer, my confirmer set L_me.
    /// First point per confirmer, indexed by `pid - 1` (per-pid state in
    /// this machine is direct-indexed: `advance` re-probes it on every
    /// input, and at `n ≤ MAX_N = 256` a dense vector beats any hash map).
    points: Vec<Option<F>>,
    l_mine: ProcessSet,
    l_frozen: bool,

    // Moderator-only.
    moderator_input: Option<F>,
    moderator_poly: Option<Poly<F>>,
    /// `moderator_poly` evaluated at every process index (computed once).
    moderator_evals: Vec<F>,
    monitor_values: Vec<Option<F>>,
    m_mine: ProcessSet,
    m_frozen: bool,

    // RB-delivered public state.
    acks: ProcessSet,
    l_hat: Vec<Option<ProcessSet>>,
    m_hat: Option<ProcessSet>,
    ok_delivered: bool,

    share_completed: bool,
    dropped_deal: bool,

    // Reconstruct.
    recon_requested: bool,
    recon_sent: bool,
    /// All reconstruct points in arrival order: (poly, origin, value).
    recon_points: Vec<(Pid, Pid, F)>,
    /// Recovered constant terms `f̄_l(0)` (the full polynomials are never
    /// needed — only their values at zero feed step 4 of `R′`).
    recon_zeros: Vec<Option<F>>,
    /// Scratch for interpolation point lists (reused across advances).
    pts_scratch: Vec<(u64, F)>,
    output: Option<Reconstructed<F>>,
    output_emitted: bool,
}

impl<F: Field> Mw<F> {
    /// Creates this process's view of invocation `id` in an `n`-process
    /// system tolerating `t` faults. `domain` is the instance's shared
    /// evaluation domain and must cover the points `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t`, all ids address processes in `1..=n`, and
    /// the domain covers `n` points.
    pub fn new(id: MwId, me: Pid, n: usize, t: usize, domain: Arc<Domain<F>>) -> Self {
        assert!(n > 3 * t, "MW-SVSS requires n > 3t");
        assert!(me.index() as usize <= n, "process id out of range");
        assert!(
            id.dealer().index() as usize <= n && id.moderator().index() as usize <= n,
            "dealer/moderator out of range"
        );
        assert!(domain.n() >= n, "domain must cover all process indices");
        Mw {
            id,
            me,
            n,
            t,
            domain,
            dealer_polys: None,
            ok_sent: false,
            my_values: None,
            my_poly: None,
            my_evals: Vec::new(),
            acked: false,
            points: vec![None; n],
            l_mine: ProcessSet::new(),
            l_frozen: false,
            moderator_input: None,
            moderator_poly: None,
            moderator_evals: Vec::new(),
            monitor_values: vec![None; n],
            m_mine: ProcessSet::new(),
            m_frozen: false,
            acks: ProcessSet::new(),
            l_hat: vec![None; n],
            m_hat: None,
            ok_delivered: false,
            share_completed: false,
            dropped_deal: false,
            recon_requested: false,
            recon_sent: false,
            recon_points: Vec::new(),
            recon_zeros: vec![None; n],
            pts_scratch: Vec::new(),
            output: None,
            output_emitted: false,
        }
    }

    /// The invocation id.
    pub fn id(&self) -> MwId {
        self.id
    }

    /// Whether the share protocol completed at this process.
    pub fn share_completed(&self) -> bool {
        self.share_completed
    }

    /// The reconstruct output, if produced.
    pub fn output(&self) -> Option<Reconstructed<F>> {
        if self.output_emitted {
            self.output
        } else {
            None
        }
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Dense per-pid slot index, `None` for ids outside `1..=n`.
    fn idx(&self, p: Pid) -> Option<usize> {
        let i = p.index() as usize;
        (i <= self.n).then(|| i - 1)
    }

    /// Dealer command (share step 1): pick the polynomials and send the
    /// shares. `secret` is `s = f(0)`.
    ///
    /// # Panics
    ///
    /// Panics if this process is not the dealer or already started.
    pub fn start_share<R: Rng + ?Sized>(
        &mut self,
        secret: F,
        rng: &mut R,
        out: &mut Vec<MwOut<F>>,
    ) {
        assert_eq!(self.me, self.id.dealer(), "only the dealer shares");
        assert!(self.dealer_polys.is_none(), "share started twice");
        let f = Poly::random_with_constant(secret, self.t, rng);
        let fls: Vec<Poly<F>> = (1..=self.n as u64)
            .map(|l| Poly::random_with_constant(f.eval(self.domain.point(l)), self.t, rng))
            .collect();
        for j in Pid::all(self.n) {
            let xj = self.domain.point(j.as_u64());
            // The wire body omits j's own value f_j(j): it is redundant
            // with `monitor_poly` and the recipient splices it back in
            // (see `MwDealBody`).
            let others: Vec<F> = fls
                .iter()
                .enumerate()
                .filter(|&(l, _)| l != (j.index() - 1) as usize)
                .map(|(_, fl)| fl.eval(xj))
                .collect();
            let monitor_poly = fls[(j.index() - 1) as usize].coeffs().to_vec();
            let moderator_poly = if j == self.id.moderator() {
                Some(f.coeffs().to_vec())
            } else {
                None
            };
            out.push(MwOut::Send(
                j,
                SvssPriv::MwDeal {
                    mw: self.id,
                    deal: Box::new(crate::MwDealBody {
                        others,
                        monitor_poly,
                        moderator_poly,
                    }),
                },
            ));
        }
        self.dealer_polys = Some((f, fls));
        self.advance(out);
    }

    /// Moderator command: set the moderator's input `s′` (step 5 gate).
    /// In SVSS this is derived from the moderator's rows; standalone
    /// callers pass it explicitly.
    pub fn set_moderator_input(&mut self, s_prime: F, out: &mut Vec<MwOut<F>>) {
        assert_eq!(self.me, self.id.moderator(), "only the moderator has s′");
        if self.moderator_input.is_none() {
            self.moderator_input = Some(s_prime);
            self.advance(out);
        }
    }

    /// Command: begin the reconstruct protocol `R′`. If the share has not
    /// completed locally yet, reconstruction starts as soon as it does.
    pub fn start_reconstruct(&mut self, out: &mut Vec<MwOut<F>>) {
        self.recon_requested = true;
        self.advance(out);
    }

    /// Feeds one input into the machine.
    pub fn on_input(&mut self, input: MwIn<F>, out: &mut Vec<MwOut<F>>) {
        match input {
            MwIn::Deal {
                from,
                values,
                monitor_poly,
                moderator_poly,
            } => {
                // Only the dealer's first well-formed deal counts.
                if from != self.id.dealer() || self.my_values.is_some() {
                    return;
                }
                if values.len() != self.n || monitor_poly.len() > self.t + 1 {
                    return; // malformed: treat as never sent
                }
                let poly = Poly::from_coeffs(monitor_poly);
                poly.eval_many(&self.domain.points()[..self.n], &mut self.my_evals);
                self.my_values = Some(values.clone());
                self.my_poly = Some(poly);
                if self.me == self.id.moderator() {
                    match moderator_poly {
                        Some(c) if c.len() <= self.t + 1 => {
                            let f_hat = Poly::from_coeffs(c);
                            f_hat.eval_many(
                                &self.domain.points()[..self.n],
                                &mut self.moderator_evals,
                            );
                            self.moderator_poly = Some(f_hat);
                        }
                        _ => {
                            // Malformed moderator part: drop the whole deal.
                            self.my_values = None;
                            self.my_poly = None;
                            self.my_evals.clear();
                            return;
                        }
                    }
                }
                // Step 2: forward each value to its monitor, and ack.
                for l in Pid::all(self.n) {
                    out.push(MwOut::Send(
                        l,
                        SvssPriv::MwPoint {
                            mw: self.id,
                            value: values[(l.index() - 1) as usize],
                        },
                    ));
                }
                self.acked = true;
                out.push(MwOut::Broadcast(
                    SvssSlot::mw_ack(self.id),
                    SvssRbValue::Unit,
                ));
            }
            MwIn::Point { from, value } => {
                if let Some(i) = self.idx(from) {
                    self.points[i].get_or_insert(value);
                }
            }
            MwIn::MonitorValue { from, value } => {
                if self.me == self.id.moderator() {
                    if let Some(i) = self.idx(from) {
                        self.monitor_values[i].get_or_insert(value);
                    }
                }
            }
            MwIn::AckDelivered { origin } => {
                self.acks.insert(origin);
            }
            MwIn::LDelivered { origin, set } => {
                // Sets naming unknown processes are malformed: ignore.
                if set.iter().all(|p| p.index() as usize <= self.n) {
                    if let Some(i) = self.idx(origin) {
                        self.l_hat[i].get_or_insert(set);
                    }
                }
            }
            MwIn::MDelivered { origin, set } => {
                if origin == self.id.moderator()
                    && self.m_hat.is_none()
                    && set.iter().all(|p| p.index() as usize <= self.n)
                {
                    self.m_hat = Some(set);
                }
            }
            MwIn::OkDelivered { origin } => {
                if origin == self.id.dealer() {
                    self.ok_delivered = true;
                }
            }
            MwIn::ReconDelivered {
                origin,
                poly,
                value,
            } => {
                if origin.index() as usize <= self.n
                    && !self
                        .recon_points
                        .iter()
                        .any(|&(p, o, _)| p == poly && o == origin)
                {
                    self.recon_points.push((poly, origin, value));
                }
            }
        }
        self.advance(out);
    }

    /// Monotone evaluation of every protocol condition. Safe to call any
    /// number of times; each action fires at most once.
    fn advance(&mut self, out: &mut Vec<MwOut<F>>) {
        self.step3_confirm(out);
        self.step4_monitor(out);
        self.step5_6_moderate(out);
        self.step7_dealer_ok(out);
        self.step8_drop_deal(out);
        self.step9_complete(out);
        self.recon_step1(out);
        self.recon_interpolate(out);
    }

    /// Step 3: on matching point + ack + my polynomial, register the DEAL
    /// expectation and grow `L_me` (until frozen at broadcast time).
    fn step3_confirm(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.l_frozen || self.my_poly.is_none() {
            return;
        }
        for l in Pid::all(self.n) {
            if self.l_mine.contains(l) || !self.acks.contains(l) {
                continue;
            }
            let Some(point) = self.points[(l.index() - 1) as usize] else {
                continue;
            };
            let expected = self.my_evals[(l.index() - 1) as usize];
            if point == expected {
                self.l_mine.insert(l);
                out.push(MwOut::RegisterDeal {
                    broadcaster: l,
                    expected,
                });
            }
        }
    }

    /// Step 4: freeze and broadcast `L_me`; send `f̂_me(0)` to the moderator.
    fn step4_monitor(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.l_frozen || self.l_mine.len() < self.quorum() {
            return;
        }
        self.l_frozen = true;
        out.push(MwOut::Broadcast(
            SvssSlot::mw_l(self.id),
            SvssRbValue::Set(self.l_mine),
        ));
        let f0 = self
            .my_poly
            .as_ref()
            .expect("L_me nonempty implies my_poly present")
            .constant_term();
        out.push(MwOut::Send(
            self.id.moderator(),
            SvssPriv::MwMonitorValue {
                mw: self.id,
                value: f0,
            },
        ));
    }

    /// Steps 5 and 6: the moderator accumulates `M` and broadcasts it.
    fn step5_6_moderate(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.me != self.id.moderator() || self.m_frozen {
            return;
        }
        let (Some(f_hat), Some(s_prime)) = (&self.moderator_poly, self.moderator_input) else {
            return;
        };
        // Step 5 global precondition: the dealer's f must match s′.
        if f_hat.constant_term() != s_prime {
            return;
        }
        for j in Pid::all(self.n) {
            if self.m_mine.contains(j) {
                continue;
            }
            let Some(mv) = self.monitor_values[(j.index() - 1) as usize] else {
                continue;
            };
            let Some(lj) = &self.l_hat[(j.index() - 1) as usize] else {
                continue;
            };
            let all_acked = lj.is_subset(&self.acks);
            if all_acked && mv == self.moderator_evals[(j.index() - 1) as usize] {
                self.m_mine.insert(j);
            }
        }
        if self.m_mine.len() >= self.quorum() {
            self.m_frozen = true;
            out.push(MwOut::Broadcast(
                SvssSlot::mw_m(self.id),
                SvssRbValue::Set(self.m_mine),
            ));
        }
    }

    /// Step 7: the dealer validates `M̂` against the public record,
    /// registers its ACK expectations, and broadcasts `OK`.
    fn step7_dealer_ok(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.me != self.id.dealer() || self.ok_sent {
            return;
        }
        let Some((_, fls)) = &self.dealer_polys else {
            return;
        };
        let Some(m_hat) = &self.m_hat else {
            return;
        };
        for j in m_hat.iter() {
            let Some(lj) = &self.l_hat[(j.index() - 1) as usize] else {
                return;
            };
            if !lj.is_subset(&self.acks) {
                return;
            }
        }
        // All conditions met: register expectations for every (j, l).
        for j in m_hat.iter() {
            let fj = &fls[(j.index() - 1) as usize];
            let lj = self.l_hat[(j.index() - 1) as usize].expect("checked above");
            for l in lj.iter() {
                out.push(MwOut::RegisterAck {
                    broadcaster: l,
                    poly: j,
                    expected: fj.eval_at_index(l.as_u64()),
                });
            }
        }
        self.ok_sent = true;
        out.push(MwOut::Broadcast(
            SvssSlot::mw_ok(self.id),
            SvssRbValue::Unit,
        ));
    }

    /// Step 8: if `M̂` excludes me, nobody will reconstruct my polynomial —
    /// drop the DEAL expectations of this session.
    fn step8_drop_deal(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.dropped_deal {
            return;
        }
        let Some(m_hat) = &self.m_hat else {
            return;
        };
        if !m_hat.contains(self.me) {
            self.dropped_deal = true;
            out.push(MwOut::DropDealEntries);
        }
    }

    /// Step 9: completion of `S′`.
    fn step9_complete(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.share_completed || !self.ok_delivered {
            return;
        }
        let Some(m_hat) = &self.m_hat else {
            return;
        };
        for l in m_hat.iter() {
            let Some(ll) = &self.l_hat[(l.index() - 1) as usize] else {
                return;
            };
            if !ll.is_subset(&self.acks) {
                return;
            }
        }
        self.share_completed = true;
        out.push(MwOut::ShareCompleted);
    }

    /// `R′` step 1: broadcast my points for every monitor in `M̂` whose
    /// confirmer set contains me.
    fn recon_step1(&mut self, out: &mut Vec<MwOut<F>>) {
        if !self.recon_requested || self.recon_sent || !self.share_completed {
            return;
        }
        let Some(m_hat) = &self.m_hat else {
            return;
        };
        self.recon_sent = true;
        let Some(values) = &self.my_values else {
            return; // dealer never dealt to me; I am in no L̂_l
        };
        for l in m_hat.iter() {
            let in_ll = self.l_hat[(l.index() - 1) as usize].is_some_and(|s| s.contains(self.me));
            if in_ll {
                out.push(MwOut::Broadcast(
                    SvssSlot::mw_recon(self.id, l),
                    SvssRbValue::Value(values[(l.index() - 1) as usize]),
                ));
            }
        }
    }

    /// `R′` steps 2–4: recover each `f̄_l(0)` from the first `t+1` valid
    /// points, then fit the degree-`t` polynomial through `{(l, f̄_l(0))}`.
    ///
    /// Only the constant terms are ever needed, so both stages use the
    /// shared [`Domain`]'s barycentric secret recovery: no coefficient
    /// vectors, no field inversions, and the point list reuses one
    /// scratch buffer across advances.
    fn recon_interpolate(&mut self, out: &mut Vec<MwOut<F>>) {
        if self.output_emitted || !self.recon_sent {
            return;
        }
        let Some(m_hat) = self.m_hat else {
            return;
        };
        let mut pts = std::mem::take(&mut self.pts_scratch);
        for l in m_hat.iter() {
            if self.recon_zeros[(l.index() - 1) as usize].is_some() {
                continue;
            }
            let Some(ll) = &self.l_hat[(l.index() - 1) as usize] else {
                continue;
            };
            // K_{me,l}: points from confirmers in L̂_l, in arrival order.
            pts.clear();
            for &(p, o, v) in &self.recon_points {
                if p == l && ll.contains(o) {
                    pts.push((o.as_u64(), v));
                    if pts.len() == self.t + 1 {
                        break;
                    }
                }
            }
            if pts.len() == self.t + 1 {
                let zero = self
                    .domain
                    .interpolate_at_zero(&pts)
                    .expect("confirmer indices are distinct domain points");
                self.recon_zeros[(l.index() - 1) as usize] = Some(zero);
            }
        }
        if m_hat
            .iter()
            .all(|l| self.recon_zeros[(l.index() - 1) as usize].is_some())
        {
            pts.clear();
            pts.extend(m_hat.iter().map(|l| {
                let zero = self.recon_zeros[(l.index() - 1) as usize].expect("checked above");
                (l.as_u64(), zero)
            }));
            let result = match self.domain.interpolate_checked_at_zero(&pts, self.t) {
                Some(secret) => Reconstructed::Value(secret),
                None => Reconstructed::Bottom,
            };
            self.output = Some(result);
            self.output_emitted = true;
            out.push(MwOut::Output(result));
        }
        self.pts_scratch = pts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sba_field::Gf61;

    const N: usize = 4;
    const T: usize = 1;

    fn f(v: u64) -> Gf61 {
        Gf61::from_u64(v)
    }

    fn mw_id() -> MwId {
        MwId::standalone(1, Pid::new(1), Pid::new(2))
    }

    fn machine(me: u32) -> Mw<Gf61> {
        Mw::new(mw_id(), Pid::new(me), N, T, Arc::new(Domain::new(N)))
    }

    /// The dealer's start emits one deal per process (with the master
    /// polynomial only for the moderator) and nothing else.
    #[test]
    fn dealer_start_emits_n_deals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = machine(1);
        let mut out = Vec::new();
        m.start_share(f(42), &mut rng, &mut out);
        let deals: Vec<&MwOut<Gf61>> = out
            .iter()
            .filter(|o| matches!(o, MwOut::Send(_, SvssPriv::MwDeal { .. })))
            .collect();
        assert_eq!(deals.len(), N);
        let mut moderator_polys = 0;
        for o in &out {
            if let MwOut::Send(to, SvssPriv::MwDeal { deal, .. }) = o {
                assert_eq!(deal.others.len(), N - 1);
                if deal.moderator_poly.is_some() {
                    assert_eq!(*to, Pid::new(2), "only the moderator gets f");
                    moderator_polys += 1;
                }
            }
        }
        assert_eq!(moderator_polys, 1);
    }

    #[test]
    #[should_panic(expected = "share started twice")]
    fn double_start_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = machine(1);
        let mut out = Vec::new();
        m.start_share(f(1), &mut rng, &mut out);
        m.start_share(f(2), &mut rng, &mut out);
    }

    #[test]
    #[should_panic(expected = "only the dealer")]
    fn non_dealer_cannot_share() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = machine(3);
        let mut out = Vec::new();
        m.start_share(f(1), &mut rng, &mut out);
    }

    /// A well-formed deal triggers the step-2 fan-out: one point per
    /// process plus the RB ack.
    #[test]
    fn deal_triggers_points_and_ack() {
        let mut m = machine(3);
        let mut out = Vec::new();
        m.on_input(
            MwIn::Deal {
                from: Pid::new(1),
                values: vec![f(1), f(2), f(3), f(4)],
                monitor_poly: vec![f(9), f(8)],
                moderator_poly: None,
            },
            &mut out,
        );
        let points = out
            .iter()
            .filter(|o| matches!(o, MwOut::Send(_, SvssPriv::MwPoint { .. })))
            .count();
        assert_eq!(points, N);
        assert!(out
            .iter()
            .any(|o| matches!(o, MwOut::Broadcast(s, _) if s.kind() == sba_net::SlotKind::MwAck)));
    }

    /// Deals from anyone but the dealer, malformed deals, and repeat deals
    /// are all inert.
    #[test]
    fn bogus_deals_ignored() {
        let mut m = machine(3);
        let mut out = Vec::new();
        // Wrong sender.
        m.on_input(
            MwIn::Deal {
                from: Pid::new(4),
                values: vec![f(1); N],
                monitor_poly: vec![f(1)],
                moderator_poly: None,
            },
            &mut out,
        );
        assert!(out.is_empty());
        // Wrong value-vector length.
        m.on_input(
            MwIn::Deal {
                from: Pid::new(1),
                values: vec![f(1); N + 2],
                monitor_poly: vec![f(1)],
                moderator_poly: None,
            },
            &mut out,
        );
        assert!(out.is_empty());
        // Monitor polynomial of degree > t.
        m.on_input(
            MwIn::Deal {
                from: Pid::new(1),
                values: vec![f(1); N],
                monitor_poly: vec![f(1); T + 5],
                moderator_poly: None,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    /// Step 3: confirmations only count with a matching point AND an ack,
    /// and freeze once L is broadcast.
    #[test]
    fn confirmations_gate_on_point_and_ack() {
        let mut m = machine(3);
        let mut out = Vec::new();
        // Monitor polynomial f_3 with f_3(l) = 7 for all l (constant).
        m.on_input(
            MwIn::Deal {
                from: Pid::new(1),
                values: vec![f(7); N],
                monitor_poly: vec![f(7)],
                moderator_poly: None,
            },
            &mut out,
        );
        out.clear();
        // A matching point without an ack: no DEAL registration yet.
        m.on_input(
            MwIn::Point {
                from: Pid::new(2),
                value: f(7),
            },
            &mut out,
        );
        assert!(!out.iter().any(|o| matches!(o, MwOut::RegisterDeal { .. })));
        // The ack arrives: now the confirmation registers.
        m.on_input(
            MwIn::AckDelivered {
                origin: Pid::new(2),
            },
            &mut out,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            MwOut::RegisterDeal { broadcaster, .. } if *broadcaster == Pid::new(2)
        )));
        // A mismatching point from p4 never registers.
        out.clear();
        m.on_input(
            MwIn::Point {
                from: Pid::new(4),
                value: f(8),
            },
            &mut out,
        );
        m.on_input(
            MwIn::AckDelivered {
                origin: Pid::new(4),
            },
            &mut out,
        );
        assert!(!out.iter().any(|o| matches!(
            o,
            MwOut::RegisterDeal { broadcaster, .. } if *broadcaster == Pid::new(4)
        )));
    }

    /// M̂ from anyone but the moderator and OK from anyone but the dealer
    /// are ignored.
    #[test]
    fn role_checked_broadcasts() {
        let mut m = machine(3);
        let mut out = Vec::new();
        let all: ProcessSet = Pid::all(N).collect();
        m.on_input(
            MwIn::MDelivered {
                origin: Pid::new(4), // not the moderator
                set: all,
            },
            &mut out,
        );
        m.on_input(
            MwIn::OkDelivered {
                origin: Pid::new(4),
            },
            &mut out,
        ); // not dealer
        assert!(!m.share_completed());
        assert!(out.is_empty());
    }

    /// Reconstruct points arriving before the local share completes are
    /// buffered, not lost.
    #[test]
    fn early_recon_points_buffered() {
        let mut m = machine(3);
        let mut out = Vec::new();
        m.on_input(
            MwIn::ReconDelivered {
                origin: Pid::new(2),
                poly: Pid::new(1),
                value: f(5),
            },
            &mut out,
        );
        // No output, no panic; the point is retained for later.
        assert!(out.is_empty());
        assert!(m.output().is_none());
    }
}
