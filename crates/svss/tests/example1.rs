//! Reproduction of the paper's **Example 1** (§3.3): with `n = 4`,
//! `t = 1`, dealer `p2` faulty and moderator `p1`, two nonfaulty processes
//! complete an MW-SVSS invocation with *different* values — and only
//! afterwards does a nonfaulty process shun the faulty dealer.
//!
//! Construction, following the paper's schedule:
//! - `p4` is delayed throughout, so `L_1 = L_2 = L_3 = M = {1, 2, 3}`;
//! - `p2` (the faulty dealer) behaves honestly in the share phase, but
//!   forges its reconstruction points for polynomials `f_1` (+2δ) and
//!   `f_2` (+δ), keeping `f_3`'s point honest — `p3` holds a DEAL
//!   expectation only about its own `f_3`, so it detects nothing;
//! - `p3` accepts points from `{2, 3}` first: each forged `+Δ` at `x = 2`
//!   shifts the constant term by `+3Δ`, so `p3` sees `f̄_1(0), f̄_2(0),
//!   f̄_3(0)` shifted by `(6δ, 3δ, 0)` — still collinear — and outputs
//!   `s + 9δ`;
//! - `p1` accepts points from `{1, 3}` first and outputs the true `s`;
//! - when `p2`'s forged `f_1` point finally reaches `p1`, it contradicts
//!   `p1`'s DEAL expectation and `p1` shuns `p2` — after both completed.

use sba_broadcast::Params;
use sba_field::{Field, Gf61};
use sba_net::{MwId, Pid, RbStep, SlotView, SvssRbValue, Unpacked, WireKind};
use sba_svss::harness::{SvssNet, Tamper};
use sba_svss::{Reconstructed, SvssMsg};

fn f(v: u64) -> Gf61 {
    Gf61::from_u64(v)
}

/// Is this a Ready message of a reconstruct slot originated by `origin`?
fn is_recon_ready_from(msg: &SvssMsg<Gf61>, origin: Pid) -> bool {
    msg.wire_kind() == WireKind::MwReconReady && msg.origin() == Some(origin)
}

#[test]
fn example_1_divergent_outputs_then_shunning() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 1);
    let (p1, p2, p3, p4) = (Pid::new(1), Pid::new(2), Pid::new(3), Pid::new(4));
    let id = MwId::standalone(1, p2, p1); // dealer 2, moderator 1
    let secret = f(1000);
    let delta = 7u64;

    // p2: honest share; forged reconstruct points for f_1 (+2δ) and
    // f_2 (+δ); honest point for f_3.
    net.set_tamper(p2, move |_to, msg| {
        if msg.wire_kind() != WireKind::MwReconInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb {
            slot,
            origin,
            value: SvssRbValue::Value(v),
            ..
        } = msg.clone().unpack()
        else {
            return Tamper::Keep;
        };
        let SlotView::MwRecon(_, poly) = slot.view() else {
            return Tamper::Keep;
        };
        let shift = match poly.index() {
            1 => 2 * delta,
            2 => delta,
            _ => return Tamper::Keep,
        };
        Tamper::Replace(vec![SvssMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Value(v + Gf61::from_u64(shift)),
        )])
    });

    net.mw_share(id, secret);
    net.mw_set_moderator_input(id, secret);
    // Share phase entirely without p4: L and M sets become {1, 2, 3}.
    net.deliver_matching(|from, to, _| from != p4 && to != p4);

    // All of 1, 2, 3 completed the share; start reconstruction.
    net.mw_reconstruct_all(id);

    // Reconstruct schedule: p3 must accept p2's points first, p1 must
    // accept p1+p3's points first. RB acceptance fires on the last Ready,
    // so hold back: Ready(origin=p1) → p3, Ready(origin=p2) → p1, and
    // still everything touching p4.
    net.deliver_matching(move |from, to, msg| {
        if from == p4 || to == p4 {
            return false;
        }
        if to == p3 && is_recon_ready_from(msg, p1) {
            return false;
        }
        if to == p1 && is_recon_ready_from(msg, p2) {
            return false;
        }
        true
    });

    // Divergence: both nonfaulty processes completed reconstruction with
    // different values, and nobody has detected anything yet.
    let out1 = net.engine(p1).mw_output(id).expect("p1 must output");
    let out3 = net.engine(p3).mw_output(id).expect("p3 must output");
    assert_eq!(out1, Reconstructed::Value(secret), "p1 reconstructs s");
    assert_eq!(
        out3,
        Reconstructed::Value(secret + f(9 * delta)),
        "p3 reconstructs the shifted value s + 9δ"
    );
    assert!(
        net.shun_pairs().is_empty(),
        "divergence happens before any detection: {:?}",
        net.shun_pairs()
    );

    // Release everything: p2's forged f_1 point reaches p1, contradicting
    // p1's DEAL expectation about its own polynomial — p1 shuns p2.
    net.run();
    assert!(
        net.shun_pairs().contains(&(p1, p2)),
        "p1 must shun p2 after the fact: {:?}",
        net.shun_pairs()
    );
    // p3's only expectation (about f_3) was satisfied: p3 never detects.
    assert!(
        !net.shun_pairs().contains(&(p3, p2)),
        "p3 had no violated expectation: {:?}",
        net.shun_pairs()
    );
}
