//! Wire-format fuzzing for the full flat message surface: random
//! well-formed messages of **every** `WireKind` round-trip; truncated and
//! foreign-discriminant inputs are rejected; random bytes never panic the
//! decoder.

use proptest::prelude::*;
use sba_field::{Field, Gf61};
use sba_net::{
    CodecError, CoinSlot, GsetsBody, MwDealBody, MwId, Pid, ProcessSet, RbStep, Reader, RowsBody,
    SvssId, SvssPriv, SvssRbValue, SvssSlot, Wire, WireKind, WIRE_KIND_COUNT,
};
use sba_svss::SvssMsg;

fn pid() -> impl Strategy<Value = Pid> {
    (1u32..200).prop_map(Pid::new)
}

fn field_el() -> impl Strategy<Value = Gf61> {
    (0..Gf61::MODULUS).prop_map(Gf61::from_u64)
}

fn svss_id() -> impl Strategy<Value = SvssId> {
    (any::<u64>(), pid()).prop_map(|(tag, dealer)| SvssId::new(tag, dealer))
}

fn mw_id() -> impl Strategy<Value = MwId> {
    (svss_id(), pid(), pid(), pid(), pid())
        .prop_map(|(parent, d, m, r, c)| MwId::nested(parent, d, m, r, c))
}

fn pid_set() -> impl Strategy<Value = ProcessSet> {
    proptest::collection::btree_set(1u32..64, 0..8)
        .prop_map(|s| s.into_iter().map(Pid::new).collect())
}

fn rb_step() -> impl Strategy<Value = RbStep> {
    prop_oneof![Just(RbStep::Init), Just(RbStep::Echo), Just(RbStep::Ready)]
}

fn svss_priv() -> impl Strategy<Value = SvssPriv<Gf61>> {
    prop_oneof![
        (
            mw_id(),
            proptest::collection::vec(field_el(), 0..8),
            proptest::collection::vec(field_el(), 0..4),
            proptest::option::of(proptest::collection::vec(field_el(), 0..4)),
        )
            .prop_map(|(mw, others, monitor_poly, moderator_poly)| {
                SvssPriv::MwDeal {
                    mw,
                    deal: Box::new(MwDealBody {
                        others,
                        monitor_poly,
                        moderator_poly,
                    }),
                }
            }),
        (mw_id(), field_el()).prop_map(|(mw, value)| SvssPriv::MwPoint { mw, value }),
        (mw_id(), field_el()).prop_map(|(mw, value)| SvssPriv::MwMonitorValue { mw, value }),
        (
            svss_id(),
            proptest::collection::vec(field_el(), 0..4),
            proptest::collection::vec(field_el(), 0..4),
        )
            .prop_map(|(session, g, h)| SvssPriv::Rows {
                session,
                rows: Box::new(RowsBody { g, h }),
            }),
    ]
}

/// A well-formed RB message of every slot family (the payload shape is
/// fixed per family by the flat format).
fn svss_rb() -> impl Strategy<Value = SvssMsg<Gf61>> {
    prop_oneof![
        (mw_id(), pid(), rb_step()).prop_map(|(m, o, s)| SvssMsg::rb(
            SvssSlot::mw_ack(m),
            o,
            s,
            SvssRbValue::Unit
        )),
        (mw_id(), pid(), rb_step()).prop_map(|(m, o, s)| SvssMsg::rb(
            SvssSlot::mw_ok(m),
            o,
            s,
            SvssRbValue::Unit
        )),
        (mw_id(), pid(), rb_step(), pid_set()).prop_map(|(m, o, s, set)| {
            SvssMsg::rb(SvssSlot::mw_l(m), o, s, SvssRbValue::Set(set))
        }),
        (mw_id(), pid(), rb_step(), pid_set()).prop_map(|(m, o, s, set)| {
            SvssMsg::rb(SvssSlot::mw_m(m), o, s, SvssRbValue::Set(set))
        }),
        (mw_id(), pid(), pid(), rb_step(), field_el()).prop_map(|(m, poly, o, s, v)| {
            SvssMsg::rb(SvssSlot::mw_recon(m, poly), o, s, SvssRbValue::Value(v))
        }),
        (
            svss_id(),
            pid(),
            rb_step(),
            pid_set(),
            proptest::collection::vec((pid(), pid_set()), 0..4)
        )
            .prop_map(|(sid, o, s, g, members)| {
                SvssMsg::rb(
                    SvssSlot::gsets(sid),
                    o,
                    s,
                    SvssRbValue::Gsets(Box::new(GsetsBody { g, members })),
                )
            }),
    ]
}

fn coin_rb() -> impl Strategy<Value = SvssMsg<Gf61>> {
    (
        prop_oneof![
            any::<u64>().prop_map(CoinSlot::Attach),
            any::<u64>().prop_map(CoinSlot::Support)
        ],
        pid(),
        rb_step(),
        pid_set(),
    )
        .prop_map(|(slot, o, s, set)| SvssMsg::coin_rb(slot, o, s, set))
}

fn any_msg() -> impl Strategy<Value = SvssMsg<Gf61>> {
    prop_oneof![svss_priv().prop_map(SvssMsg::private), svss_rb(), coin_rb()]
}

/// One deterministic representative per [`WireKind`] — the exhaustiveness
/// backstop for the proptest strategies above.
fn representative(kind: WireKind) -> SvssMsg<Gf61> {
    let mw = MwId::nested(
        SvssId::new(5, Pid::new(1)),
        Pid::new(2),
        Pid::new(3),
        Pid::new(3),
        Pid::new(2),
    );
    let sid = SvssId::new(5, Pid::new(1));
    let origin = Pid::new(4);
    let set: ProcessSet = Pid::all(3).collect();
    let f = Gf61::from_u64(77);
    let step = kind.rb_step().unwrap_or(RbStep::Init);
    match kind {
        WireKind::MwDeal => SvssMsg::private(SvssPriv::MwDeal {
            mw,
            deal: Box::new(MwDealBody {
                others: vec![f, f],
                monitor_poly: vec![f],
                moderator_poly: Some(vec![f]),
            }),
        }),
        WireKind::MwPoint => SvssMsg::private(SvssPriv::MwPoint { mw, value: f }),
        WireKind::MwMval => SvssMsg::private(SvssPriv::MwMonitorValue { mw, value: f }),
        WireKind::Rows => SvssMsg::private(SvssPriv::Rows {
            session: sid,
            rows: Box::new(RowsBody {
                g: vec![f],
                h: vec![f, f],
            }),
        }),
        WireKind::MwAckInit | WireKind::MwAckEcho | WireKind::MwAckReady => {
            SvssMsg::rb(SvssSlot::mw_ack(mw), origin, step, SvssRbValue::Unit)
        }
        WireKind::MwLInit | WireKind::MwLEcho | WireKind::MwLReady => {
            SvssMsg::rb(SvssSlot::mw_l(mw), origin, step, SvssRbValue::Set(set))
        }
        WireKind::MwMInit | WireKind::MwMEcho | WireKind::MwMReady => {
            SvssMsg::rb(SvssSlot::mw_m(mw), origin, step, SvssRbValue::Set(set))
        }
        WireKind::MwOkInit | WireKind::MwOkEcho | WireKind::MwOkReady => {
            SvssMsg::rb(SvssSlot::mw_ok(mw), origin, step, SvssRbValue::Unit)
        }
        WireKind::MwReconInit | WireKind::MwReconEcho | WireKind::MwReconReady => SvssMsg::rb(
            SvssSlot::mw_recon(mw, Pid::new(2)),
            origin,
            step,
            SvssRbValue::Value(f),
        ),
        WireKind::GsetsInit | WireKind::GsetsEcho | WireKind::GsetsReady => SvssMsg::rb(
            SvssSlot::gsets(sid),
            origin,
            step,
            SvssRbValue::Gsets(Box::new(GsetsBody {
                g: set,
                members: vec![(Pid::new(1), set)],
            })),
        ),
        WireKind::AttachInit | WireKind::AttachEcho | WireKind::AttachReady => {
            SvssMsg::coin_rb(CoinSlot::Attach(9), origin, step, set)
        }
        WireKind::SupportInit | WireKind::SupportEcho | WireKind::SupportReady => {
            SvssMsg::coin_rb(CoinSlot::Support(9), origin, step, set)
        }
    }
}

/// Every flat discriminant round-trips, reports its own kind, and matches
/// its arithmetic `encoded_len`.
#[test]
fn every_wire_kind_round_trips() {
    for kind in WireKind::all() {
        let msg = representative(kind);
        assert_eq!(msg.wire_kind(), kind);
        let bytes = msg.encoded();
        assert_eq!(bytes[0], kind as u8, "flat discriminant leads the frame");
        assert_eq!(msg.encoded_len(), bytes.len(), "{kind:?}");
        let mut r = Reader::new(&bytes);
        assert_eq!(SvssMsg::<Gf61>::decode(&mut r).unwrap(), msg, "{kind:?}");
        assert_eq!(r.remaining(), 0);
    }
}

/// Every strict prefix of every kind's encoding is rejected (truncation
/// can never produce a value, let alone a panic).
#[test]
fn truncated_frames_rejected() {
    for kind in WireKind::all() {
        let bytes = representative(kind).encoded();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                SvssMsg::<Gf61>::decode(&mut r).is_err(),
                "{kind:?} truncated to {cut} bytes decoded"
            );
        }
    }
}

/// The shrunk PR 5 deal encoding (single-byte vector lengths, merged
/// moderator flag/length byte, recipient's own value omitted) round-trips
/// across the moderator/non-moderator split and every vector shape the
/// protocol can produce, and the merged byte is bounds-checked: a length
/// byte promising more coefficients than the frame carries is rejected,
/// never mis-decoded.
#[test]
fn shrunk_deal_encoding_round_trips_and_rejects_lies() {
    let mw = MwId::nested(
        SvssId::new(5, Pid::new(1)),
        Pid::new(2),
        Pid::new(3),
        Pid::new(3),
        Pid::new(2),
    );
    let f = Gf61::from_u64;
    for n_minus_1 in [0usize, 3, 6, 63] {
        for t_plus_1 in [0usize, 1, 3] {
            for moderator in [false, true] {
                let msg = SvssMsg::<Gf61>::private(SvssPriv::MwDeal {
                    mw,
                    deal: Box::new(MwDealBody {
                        others: (0..n_minus_1 as u64).map(f).collect(),
                        monitor_poly: (0..t_plus_1 as u64).map(f).collect(),
                        moderator_poly: moderator.then(|| (0..t_plus_1 as u64).map(f).collect()),
                    }),
                });
                let bytes = msg.encoded();
                assert_eq!(msg.encoded_len(), bytes.len());
                let mut r = Reader::new(&bytes);
                assert_eq!(SvssMsg::<Gf61>::decode(&mut r).unwrap(), msg);
                assert_eq!(r.remaining(), 0);
            }
        }
    }
    // A lying merged byte: claim 200 moderator coefficients in a frame
    // that ends right after the byte.
    let small = SvssMsg::<Gf61>::private(SvssPriv::MwDeal {
        mw,
        deal: Box::new(MwDealBody {
            others: vec![f(1)],
            monitor_poly: vec![f(2)],
            moderator_poly: None,
        }),
    });
    let mut bytes = small.encoded();
    let last = bytes.len() - 1;
    bytes[last] = 201; // merged byte: Some with 200 coefficients
    let mut r = Reader::new(&bytes);
    assert_eq!(
        SvssMsg::<Gf61>::decode(&mut r).unwrap_err(),
        CodecError::Invalid
    );
    // Same lie on a vector length prefix (the `others` length byte).
    let mut bytes = small.encoded();
    bytes[14] = 250; // kind 1 + mw 13, then the others length byte
    let mut r = Reader::new(&bytes);
    assert_eq!(
        SvssMsg::<Gf61>::decode(&mut r).unwrap_err(),
        CodecError::Invalid
    );
}

/// Discriminant bytes outside the kind table are foreign and rejected
/// with `BadDiscriminant`.
#[test]
fn foreign_discriminants_rejected() {
    for b in WIRE_KIND_COUNT..=255 {
        let frame = [b, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let mut r = Reader::new(&frame);
        assert_eq!(
            SvssMsg::<Gf61>::decode(&mut r).unwrap_err(),
            CodecError::BadDiscriminant(b)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Canonical encode/decode is the identity and consumes all bytes,
    /// and the arithmetic `encoded_len` matches the real encoding (the
    /// simulator charges metrics through it without serializing).
    #[test]
    fn svss_messages_round_trip(msg in any_msg()) {
        let bytes = msg.encoded();
        prop_assert_eq!(msg.encoded_len(), bytes.len());
        let mut r = Reader::new(&bytes);
        let back = SvssMsg::<Gf61>::decode(&mut r).expect("well-formed");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Unpacking and re-packing the structured form is the identity.
    #[test]
    fn unpack_pack_identity(msg in any_msg()) {
        use sba_net::Unpacked;
        let back = match msg.clone().unpack() {
            Unpacked::Priv(p) => SvssMsg::private(p),
            Unpacked::Rb { slot, origin, step, value } => SvssMsg::rb(slot, origin, step, value),
            Unpacked::CoinRb { slot, origin, step, set } => {
                SvssMsg::coin_rb(slot, origin, step, set)
            }
        };
        prop_assert_eq!(back, msg);
    }

    /// Arbitrary byte soup either decodes to SOMETHING (which must then
    /// re-encode to a decodable value) or errors — never panics.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reader::new(&bytes);
        if let Ok(msg) = SvssMsg::<Gf61>::decode(&mut r) {
            let re = msg.encoded();
            let mut r2 = Reader::new(&re);
            prop_assert!(SvssMsg::<Gf61>::decode(&mut r2).is_ok());
        }
    }
}
