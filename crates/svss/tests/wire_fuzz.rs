//! Wire-format fuzzing for the full SVSS message surface: random
//! well-formed messages round-trip; random bytes never panic the decoder.

use proptest::prelude::*;
use sba_broadcast::{MuxMsg, RbMsg, WrbMsg};
use sba_field::{Field, Gf61};
use sba_net::{MwId, Pid, ProcessSet, Reader, SvssId, Wire};
use sba_svss::{GsetsBody, MwDealBody, RowsBody, SvssMsg, SvssPriv, SvssRbValue, SvssSlot};

fn pid() -> impl Strategy<Value = Pid> {
    (1u32..200).prop_map(Pid::new)
}

fn field_el() -> impl Strategy<Value = Gf61> {
    (0..Gf61::MODULUS).prop_map(Gf61::from_u64)
}

fn svss_id() -> impl Strategy<Value = SvssId> {
    (any::<u64>(), pid()).prop_map(|(tag, dealer)| SvssId::new(tag, dealer))
}

fn mw_id() -> impl Strategy<Value = MwId> {
    (svss_id(), pid(), pid(), pid(), pid())
        .prop_map(|(parent, d, m, r, c)| MwId::nested(parent, d, m, r, c))
}

fn pid_set() -> impl Strategy<Value = ProcessSet> {
    proptest::collection::btree_set(1u32..64, 0..8)
        .prop_map(|s| s.into_iter().map(Pid::new).collect())
}

fn svss_priv() -> impl Strategy<Value = SvssPriv<Gf61>> {
    prop_oneof![
        (
            mw_id(),
            proptest::collection::vec(field_el(), 0..8),
            proptest::collection::vec(field_el(), 0..4),
            proptest::option::of(proptest::collection::vec(field_el(), 0..4)),
        )
            .prop_map(|(mw, values, monitor_poly, moderator_poly)| {
                SvssPriv::MwDeal {
                    mw,
                    deal: Box::new(MwDealBody {
                        values,
                        monitor_poly,
                        moderator_poly,
                    }),
                }
            }),
        (mw_id(), field_el()).prop_map(|(mw, value)| SvssPriv::MwPoint { mw, value }),
        (mw_id(), field_el()).prop_map(|(mw, value)| SvssPriv::MwMonitorValue { mw, value }),
        (
            svss_id(),
            proptest::collection::vec(field_el(), 0..4),
            proptest::collection::vec(field_el(), 0..4),
        )
            .prop_map(|(session, g, h)| SvssPriv::Rows {
                session,
                rows: Box::new(RowsBody { g, h }),
            }),
    ]
}

fn svss_slot() -> impl Strategy<Value = SvssSlot> {
    prop_oneof![
        mw_id().prop_map(SvssSlot::MwAck),
        mw_id().prop_map(SvssSlot::MwL),
        mw_id().prop_map(SvssSlot::MwM),
        mw_id().prop_map(SvssSlot::MwOk),
        (mw_id(), pid()).prop_map(|(m, l)| SvssSlot::MwRecon(m, l)),
        svss_id().prop_map(SvssSlot::Gsets),
    ]
}

fn rb_value() -> impl Strategy<Value = SvssRbValue<Gf61>> {
    prop_oneof![
        Just(SvssRbValue::Unit),
        pid_set().prop_map(SvssRbValue::Set),
        field_el().prop_map(SvssRbValue::Value),
        (
            pid_set(),
            proptest::collection::vec((pid(), pid_set()), 0..4)
        )
            .prop_map(|(g, members)| SvssRbValue::Gsets(Box::new(GsetsBody { g, members }))),
    ]
}

fn svss_msg() -> impl Strategy<Value = SvssMsg<Gf61>> {
    prop_oneof![
        svss_priv().prop_map(SvssMsg::Priv),
        (svss_slot(), pid(), rb_value()).prop_map(|(tag, origin, value)| {
            SvssMsg::Rb(MuxMsg {
                tag,
                origin,
                inner: RbMsg::Wrb(WrbMsg::Init(value)),
            })
        }),
        (svss_slot(), pid(), rb_value()).prop_map(|(tag, origin, value)| {
            SvssMsg::Rb(MuxMsg {
                tag,
                origin,
                inner: RbMsg::Ready(value),
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Canonical encode/decode is the identity and consumes all bytes,
    /// and the arithmetic `encoded_len` matches the real encoding (the
    /// simulator charges metrics through it without serializing).
    #[test]
    fn svss_messages_round_trip(msg in svss_msg()) {
        let bytes = msg.encoded();
        prop_assert_eq!(msg.encoded_len(), bytes.len());
        let mut r = Reader::new(&bytes);
        let back = SvssMsg::<Gf61>::decode(&mut r).expect("well-formed");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Arbitrary byte soup either decodes to SOMETHING (which must then
    /// re-encode to a decodable value) or errors — never panics.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reader::new(&bytes);
        if let Ok(msg) = SvssMsg::<Gf61>::decode(&mut r) {
            let re = msg.encoded();
            let mut r2 = Reader::new(&re);
            prop_assert!(SvssMsg::<Gf61>::decode(&mut r2).is_ok());
        }
    }
}
