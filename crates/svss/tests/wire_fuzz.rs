//! Wire-format fuzzing for the full flat message surface: random
//! well-formed messages of **every** `WireKind` round-trip; truncated and
//! foreign-discriminant inputs are rejected; random bytes never panic the
//! decoder.

use proptest::prelude::*;
use sba_field::{Field, Gf61};
use sba_net::{
    CodecError, CoinSlot, GsetsBody, MwDealBody, MwId, Pid, ProcessSet, RbStep, Reader, RowsBody,
    SvssId, SvssPriv, SvssRbValue, SvssSlot, Wire, WireKind, WireMsg, WIRE_KIND_COUNT,
};
use sba_svss::SvssMsg;

fn pid() -> impl Strategy<Value = Pid> {
    (1u32..=256).prop_map(Pid::new)
}

fn field_el() -> impl Strategy<Value = Gf61> {
    (0..Gf61::MODULUS).prop_map(Gf61::from_u64)
}

fn svss_id() -> impl Strategy<Value = SvssId> {
    (any::<u64>(), pid()).prop_map(|(tag, dealer)| SvssId::new(tag, dealer))
}

fn mw_id() -> impl Strategy<Value = MwId> {
    (svss_id(), pid(), pid(), pid(), pid())
        .prop_map(|(parent, d, m, r, c)| MwId::nested(parent, d, m, r, c))
}

/// Sets spanning the full `1..=MAX_N` index range, with enough members
/// to exercise both the sparse and the dense arm of the adaptive set
/// encoding (the crossover is at 8 members per spanned bitmask word).
fn pid_set() -> impl Strategy<Value = ProcessSet> {
    proptest::collection::btree_set(1u32..=256, 0..48)
        .prop_map(|s| s.into_iter().map(Pid::new).collect())
}

fn rb_step() -> impl Strategy<Value = RbStep> {
    prop_oneof![Just(RbStep::Init), Just(RbStep::Echo), Just(RbStep::Ready)]
}

fn svss_priv() -> impl Strategy<Value = SvssPriv<Gf61>> {
    prop_oneof![
        (
            mw_id(),
            proptest::collection::vec(field_el(), 0..8),
            proptest::collection::vec(field_el(), 0..4),
            proptest::option::of(proptest::collection::vec(field_el(), 0..4)),
        )
            .prop_map(|(mw, others, monitor_poly, moderator_poly)| {
                SvssPriv::MwDeal {
                    mw,
                    deal: Box::new(MwDealBody {
                        others,
                        monitor_poly,
                        moderator_poly,
                    }),
                }
            }),
        (mw_id(), field_el()).prop_map(|(mw, value)| SvssPriv::MwPoint { mw, value }),
        (mw_id(), field_el()).prop_map(|(mw, value)| SvssPriv::MwMonitorValue { mw, value }),
        (
            svss_id(),
            proptest::collection::vec(field_el(), 0..4),
            proptest::collection::vec(field_el(), 0..4),
        )
            .prop_map(|(session, g, h)| SvssPriv::Rows {
                session,
                rows: Box::new(RowsBody { g, h }),
            }),
    ]
}

/// A well-formed RB message of every slot family (the payload shape is
/// fixed per family by the flat format).
fn svss_rb() -> impl Strategy<Value = SvssMsg<Gf61>> {
    prop_oneof![
        (mw_id(), pid(), rb_step()).prop_map(|(m, o, s)| SvssMsg::rb(
            SvssSlot::mw_ack(m),
            o,
            s,
            SvssRbValue::Unit
        )),
        (mw_id(), pid(), rb_step()).prop_map(|(m, o, s)| SvssMsg::rb(
            SvssSlot::mw_ok(m),
            o,
            s,
            SvssRbValue::Unit
        )),
        (mw_id(), pid(), rb_step(), pid_set()).prop_map(|(m, o, s, set)| {
            SvssMsg::rb(SvssSlot::mw_l(m), o, s, SvssRbValue::Set(set))
        }),
        (mw_id(), pid(), rb_step(), pid_set()).prop_map(|(m, o, s, set)| {
            SvssMsg::rb(SvssSlot::mw_m(m), o, s, SvssRbValue::Set(set))
        }),
        (mw_id(), pid(), pid(), rb_step(), field_el()).prop_map(|(m, poly, o, s, v)| {
            SvssMsg::rb(SvssSlot::mw_recon(m, poly), o, s, SvssRbValue::Value(v))
        }),
        (
            svss_id(),
            pid(),
            rb_step(),
            pid_set(),
            // The member table encodes as an adaptive keyset plus one
            // set per key, so keys must be unique and ascending — the
            // invariant the engine's G-set iteration guarantees.
            (
                proptest::collection::btree_set(1u32..=256, 0..4),
                proptest::collection::vec(pid_set(), 3),
            )
                .prop_map(|(keys, sets)| {
                    keys.into_iter()
                        .map(Pid::new)
                        .zip(sets.into_iter().cycle())
                        .collect::<Vec<_>>()
                })
        )
            .prop_map(|(sid, o, s, g, members)| {
                SvssMsg::rb(
                    SvssSlot::gsets(sid),
                    o,
                    s,
                    SvssRbValue::Gsets(Box::new(GsetsBody { g, members })),
                )
            }),
    ]
}

fn coin_rb() -> impl Strategy<Value = SvssMsg<Gf61>> {
    (
        prop_oneof![
            any::<u64>().prop_map(CoinSlot::Attach),
            any::<u64>().prop_map(CoinSlot::Support)
        ],
        pid(),
        rb_step(),
        pid_set(),
    )
        .prop_map(|(slot, o, s, set)| SvssMsg::coin_rb(slot, o, s, set))
}

fn any_msg() -> impl Strategy<Value = SvssMsg<Gf61>> {
    prop_oneof![svss_priv().prop_map(SvssMsg::private), svss_rb(), coin_rb()]
}

/// One deterministic representative per [`WireKind`] — the exhaustiveness
/// backstop for the proptest strategies above.
fn representative(kind: WireKind) -> SvssMsg<Gf61> {
    let mw = MwId::nested(
        SvssId::new(5, Pid::new(1)),
        Pid::new(2),
        Pid::new(3),
        Pid::new(3),
        Pid::new(2),
    );
    let sid = SvssId::new(5, Pid::new(1));
    let origin = Pid::new(4);
    let set: ProcessSet = Pid::all(3).collect();
    let f = Gf61::from_u64(77);
    let step = kind.rb_step().unwrap_or(RbStep::Init);
    match kind {
        WireKind::MwDeal => SvssMsg::private(SvssPriv::MwDeal {
            mw,
            deal: Box::new(MwDealBody {
                others: vec![f, f],
                monitor_poly: vec![f],
                moderator_poly: Some(vec![f]),
            }),
        }),
        WireKind::MwPoint => SvssMsg::private(SvssPriv::MwPoint { mw, value: f }),
        WireKind::MwMval => SvssMsg::private(SvssPriv::MwMonitorValue { mw, value: f }),
        WireKind::Rows => SvssMsg::private(SvssPriv::Rows {
            session: sid,
            rows: Box::new(RowsBody {
                g: vec![f],
                h: vec![f, f],
            }),
        }),
        WireKind::MwAckInit | WireKind::MwAckEcho | WireKind::MwAckReady => {
            SvssMsg::rb(SvssSlot::mw_ack(mw), origin, step, SvssRbValue::Unit)
        }
        WireKind::MwLInit | WireKind::MwLEcho | WireKind::MwLReady => {
            SvssMsg::rb(SvssSlot::mw_l(mw), origin, step, SvssRbValue::Set(set))
        }
        WireKind::MwMInit | WireKind::MwMEcho | WireKind::MwMReady => {
            SvssMsg::rb(SvssSlot::mw_m(mw), origin, step, SvssRbValue::Set(set))
        }
        WireKind::MwOkInit | WireKind::MwOkEcho | WireKind::MwOkReady => {
            SvssMsg::rb(SvssSlot::mw_ok(mw), origin, step, SvssRbValue::Unit)
        }
        WireKind::MwReconInit | WireKind::MwReconEcho | WireKind::MwReconReady => SvssMsg::rb(
            SvssSlot::mw_recon(mw, Pid::new(2)),
            origin,
            step,
            SvssRbValue::Value(f),
        ),
        WireKind::GsetsInit | WireKind::GsetsEcho | WireKind::GsetsReady => SvssMsg::rb(
            SvssSlot::gsets(sid),
            origin,
            step,
            SvssRbValue::Gsets(Box::new(GsetsBody {
                g: set,
                members: vec![(Pid::new(1), set)],
            })),
        ),
        WireKind::AttachInit | WireKind::AttachEcho | WireKind::AttachReady => {
            SvssMsg::coin_rb(CoinSlot::Attach(9), origin, step, set)
        }
        WireKind::SupportInit | WireKind::SupportEcho | WireKind::SupportReady => {
            SvssMsg::coin_rb(CoinSlot::Support(9), origin, step, set)
        }
    }
}

/// Every flat discriminant round-trips, reports its own kind, and matches
/// its arithmetic `encoded_len`.
#[test]
fn every_wire_kind_round_trips() {
    for kind in WireKind::all() {
        let msg = representative(kind);
        assert_eq!(msg.wire_kind(), kind);
        let bytes = msg.encoded();
        assert_eq!(bytes[0], kind as u8, "flat discriminant leads the frame");
        assert_eq!(msg.encoded_len(), bytes.len(), "{kind:?}");
        let mut r = Reader::new(&bytes);
        assert_eq!(SvssMsg::<Gf61>::decode(&mut r).unwrap(), msg, "{kind:?}");
        assert_eq!(r.remaining(), 0);
    }
}

/// Every strict prefix of every kind's encoding is rejected (truncation
/// can never produce a value, let alone a panic).
#[test]
fn truncated_frames_rejected() {
    for kind in WireKind::all() {
        let bytes = representative(kind).encoded();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                SvssMsg::<Gf61>::decode(&mut r).is_err(),
                "{kind:?} truncated to {cut} bytes decoded"
            );
        }
    }
}

/// The shrunk PR 5 deal encoding (single-byte vector lengths, merged
/// moderator flag/length byte, recipient's own value omitted) round-trips
/// across the moderator/non-moderator split and every vector shape the
/// protocol can produce, and the merged byte is bounds-checked: a length
/// byte promising more coefficients than the frame carries is rejected,
/// never mis-decoded.
#[test]
fn shrunk_deal_encoding_round_trips_and_rejects_lies() {
    let mw = MwId::nested(
        SvssId::new(5, Pid::new(1)),
        Pid::new(2),
        Pid::new(3),
        Pid::new(3),
        Pid::new(2),
    );
    let f = Gf61::from_u64;
    for n_minus_1 in [0usize, 3, 6, 63] {
        for t_plus_1 in [0usize, 1, 3] {
            for moderator in [false, true] {
                let msg = SvssMsg::<Gf61>::private(SvssPriv::MwDeal {
                    mw,
                    deal: Box::new(MwDealBody {
                        others: (0..n_minus_1 as u64).map(f).collect(),
                        monitor_poly: (0..t_plus_1 as u64).map(f).collect(),
                        moderator_poly: moderator.then(|| (0..t_plus_1 as u64).map(f).collect()),
                    }),
                });
                let bytes = msg.encoded();
                assert_eq!(msg.encoded_len(), bytes.len());
                let mut r = Reader::new(&bytes);
                assert_eq!(SvssMsg::<Gf61>::decode(&mut r).unwrap(), msg);
                assert_eq!(r.remaining(), 0);
            }
        }
    }
    // A lying merged byte: claim 200 moderator coefficients in a frame
    // that ends right after the byte.
    let small = SvssMsg::<Gf61>::private(SvssPriv::MwDeal {
        mw,
        deal: Box::new(MwDealBody {
            others: vec![f(1)],
            monitor_poly: vec![f(2)],
            moderator_poly: None,
        }),
    });
    let mut bytes = small.encoded();
    let last = bytes.len() - 1;
    bytes[last] = 201; // merged byte: Some with 200 coefficients
    let mut r = Reader::new(&bytes);
    assert_eq!(
        SvssMsg::<Gf61>::decode(&mut r).unwrap_err(),
        CodecError::Invalid
    );
    // Same lie on a vector length prefix (the `others` length byte).
    let mut bytes = small.encoded();
    bytes[14] = 250; // kind 1 + mw 13, then the others length byte
    let mut r = Reader::new(&bytes);
    assert_eq!(
        SvssMsg::<Gf61>::decode(&mut r).unwrap_err(),
        CodecError::Invalid
    );
}

/// The adaptive set encoding round-trips inside a full message at the
/// bitmask word seams (64/65) and the cap seam (255/256), in both the
/// sparse and dense arm, and the sizes match the minimal-form rule.
#[test]
fn adaptive_sets_round_trip_across_word_seams() {
    let mw = MwId::nested(
        SvssId::new(5, Pid::new(1)),
        Pid::new(2),
        Pid::new(3),
        Pid::new(3),
        Pid::new(2),
    );
    for (set, set_bytes) in [
        (ProcessSet::new(), 1),                               // empty: bare tag
        (Pid::all(8).collect(), 9),                           // sparse, ties go sparse
        (Pid::all(64).collect(), 9),                          // dense, one word
        (Pid::all(65).collect(), 17),                         // dense, word seam
        ([64, 65].iter().map(|&i| Pid::new(i)).collect(), 3), // sparse across the seam
        (Pid::all(255).collect(), 33),                        // dense, four words
        (Pid::all(256).collect(), 33),                        // dense, full cap
        (std::iter::once(Pid::new(256)).collect(), 2),        // sparse at the cap
    ] {
        let msg = SvssMsg::<Gf61>::rb(
            SvssSlot::mw_l(mw),
            Pid::new(4),
            RbStep::Ready,
            SvssRbValue::Set(set),
        );
        let bytes = msg.encoded();
        // 15-byte header (kind + tag + 5 packed pids + origin), then the set.
        assert_eq!(bytes.len(), 15 + set_bytes, "set {set:?}");
        assert_eq!(msg.encoded_len(), bytes.len());
        let mut r = Reader::new(&bytes);
        assert_eq!(SvssMsg::<Gf61>::decode(&mut r).unwrap(), msg);
        assert_eq!(r.remaining(), 0);
    }
}

/// Key-delta frames: hand-built non-minimal spellings are rejected —
/// a repeated tag written out instead of elided, delta flags with no
/// predecessor, unknown prelude bits, and a p-elision on a kind that
/// carries no p-bytes.
#[test]
fn non_minimal_frames_rejected() {
    let msg = representative(WireKind::MwAckEcho);
    let standalone = msg.encoded();

    // Canonical two-member frame: the repeat elides tag + p-bytes.
    let mut canonical = Vec::new();
    sba_net::encode_frame(&[msg.clone(), msg.clone()], &mut canonical);
    assert_eq!(
        sba_net::frame_len(&[msg.clone(), msg.clone()]),
        canonical.len()
    );
    assert_eq!(
        sba_net::decode_frame::<WireMsg<Gf61>>(&mut Reader::new(&canonical)).unwrap(),
        vec![msg.clone(), msg.clone()]
    );
    assert_eq!(
        canonical.len(),
        4 + (1 + standalone.len()) + (1 + standalone.len() - 8 - 5),
        "second member drops its 8-byte tag and 5 p-bytes"
    );

    // Same two messages with the second spelled out in full: rejected.
    let mut spelled = Vec::new();
    2u32.encode(&mut spelled);
    for _ in 0..2 {
        spelled.push(0); // prelude: nothing elided
        spelled.extend_from_slice(&standalone);
    }
    assert_eq!(
        sba_net::decode_frame::<WireMsg<Gf61>>(&mut Reader::new(&spelled)).unwrap_err(),
        CodecError::Invalid
    );

    // Delta flags on the first frame member: nothing to delta against.
    for prelude in [1u8, 2, 3] {
        let mut orphan = Vec::new();
        1u32.encode(&mut orphan);
        orphan.push(prelude);
        orphan.extend_from_slice(&standalone);
        assert_eq!(
            sba_net::decode_frame::<WireMsg<Gf61>>(&mut Reader::new(&orphan)).unwrap_err(),
            CodecError::Invalid,
            "prelude {prelude}"
        );
    }

    // Unknown prelude bits.
    let mut unknown = Vec::new();
    1u32.encode(&mut unknown);
    unknown.push(0x80);
    unknown.extend_from_slice(&standalone);
    assert_eq!(
        sba_net::decode_frame::<WireMsg<Gf61>>(&mut Reader::new(&unknown)).unwrap_err(),
        CodecError::Invalid
    );

    // A SAME_P elision on a kind with no p-bytes (coin RB): rejected
    // even though the byte stream is otherwise well-formed.
    let a = representative(WireKind::AttachInit);
    let b = SvssMsg::<Gf61>::coin_rb(
        CoinSlot::Attach(10),
        Pid::new(4),
        RbStep::Init,
        ProcessSet::new(),
    );
    assert_ne!(a.encoded()[1..9], b.encoded()[1..9], "tags differ");
    let mut bad_p = Vec::new();
    2u32.encode(&mut bad_p);
    bad_p.push(0);
    bad_p.extend_from_slice(&a.encoded());
    bad_p.push(2); // SAME_P
    bad_p.extend_from_slice(&b.encoded());
    assert_eq!(
        sba_net::decode_frame::<WireMsg<Gf61>>(&mut Reader::new(&bad_p)).unwrap_err(),
        CodecError::Invalid
    );
}

/// Discriminant bytes outside the kind table are foreign and rejected
/// with `BadDiscriminant`.
#[test]
fn foreign_discriminants_rejected() {
    for b in WIRE_KIND_COUNT..=255 {
        let frame = [b, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let mut r = Reader::new(&frame);
        assert_eq!(
            SvssMsg::<Gf61>::decode(&mut r).unwrap_err(),
            CodecError::BadDiscriminant(b)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Canonical encode/decode is the identity and consumes all bytes,
    /// and the arithmetic `encoded_len` matches the real encoding (the
    /// simulator charges metrics through it without serializing).
    #[test]
    fn svss_messages_round_trip(msg in any_msg()) {
        let bytes = msg.encoded();
        prop_assert_eq!(msg.encoded_len(), bytes.len());
        let mut r = Reader::new(&bytes);
        let back = SvssMsg::<Gf61>::decode(&mut r).expect("well-formed");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Unpacking and re-packing the structured form is the identity.
    #[test]
    fn unpack_pack_identity(msg in any_msg()) {
        use sba_net::Unpacked;
        let back = match msg.clone().unpack() {
            Unpacked::Priv(p) => SvssMsg::private(p),
            Unpacked::Rb { slot, origin, step, value } => SvssMsg::rb(slot, origin, step, value),
            Unpacked::CoinRb { slot, origin, step, set } => {
                SvssMsg::coin_rb(slot, origin, step, set)
            }
        };
        prop_assert_eq!(back, msg);
    }

    /// Arbitrary byte soup either decodes to SOMETHING (which must then
    /// re-encode to a decodable value) or errors — never panics.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reader::new(&bytes);
        if let Ok(msg) = SvssMsg::<Gf61>::decode(&mut r) {
            let re = msg.encoded();
            let mut r2 = Reader::new(&re);
            prop_assert!(SvssMsg::<Gf61>::decode(&mut r2).is_ok());
        }
    }

    /// Key-delta frames over arbitrary batches: encode/decode is the
    /// identity, the arithmetic `frame_len` / per-member
    /// `framed_wire_len` match the real bytes (they are what the
    /// simulator charges), and every strict prefix of a frame is
    /// rejected rather than mis-decoded.
    #[test]
    fn framed_batches_round_trip(msgs in proptest::collection::vec(any_msg(), 0..6)) {
        let mut buf = Vec::new();
        sba_net::encode_frame(&msgs, &mut buf);
        prop_assert_eq!(sba_net::frame_len(&msgs), buf.len());
        let mut charged = 4;
        let mut prev: Option<&SvssMsg<Gf61>> = None;
        for m in &msgs {
            charged += m.framed_wire_len(prev);
            prev = Some(m);
        }
        prop_assert_eq!(charged, buf.len());
        let mut r = Reader::new(&buf);
        prop_assert_eq!(sba_net::decode_frame::<WireMsg<Gf61>>(&mut r).unwrap(), msgs.clone());
        prop_assert_eq!(r.remaining(), 0);
        if !msgs.is_empty() {
            for cut in 0..buf.len() {
                let mut r = Reader::new(&buf[..cut]);
                prop_assert!(sba_net::decode_frame::<WireMsg<Gf61>>(&mut r).is_err(),
                    "frame truncated to {} of {} bytes decoded", cut, buf.len());
            }
        }
    }

    /// The frame decoder never panics on byte soup, and anything it
    /// accepts re-encodes to an accepted frame (canonical fixpoint).
    #[test]
    fn frame_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reader::new(&bytes);
        if let Ok(msgs) = sba_net::decode_frame::<WireMsg<Gf61>>(&mut r) {
            let mut re = Vec::new();
            sba_net::encode_frame(&msgs, &mut re);
            let mut r2 = Reader::new(&re);
            prop_assert!(sba_net::decode_frame::<WireMsg<Gf61>>(&mut r2).is_ok());
        }
    }
}
