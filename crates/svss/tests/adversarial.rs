//! Adversarial edge cases beyond the headline properties: lying
//! moderators, forged `G`-set broadcasts, malformed messages, and the
//! DMM's expectation-liveness guarantees (Lemma 1).

use sba_broadcast::Params;
use sba_field::{Field, Gf61};
use sba_net::{MwId, Pid, ProcessSet, RbStep, SlotKind, SvssId, Unpacked, WireKind};
use sba_svss::harness::{SvssNet, Tamper};
use sba_svss::{
    GsetsBody, MwDealBody, Reconstructed, RowsBody, SvssEvent, SvssMsg, SvssPriv, SvssRbValue,
};

fn f(v: u64) -> Gf61 {
    Gf61::from_u64(v)
}

/// A moderator that broadcasts a forged (undersized) `M` set: honest
/// processes must simply never complete the share (moderation is a
/// liveness gate, not a safety risk).
#[test]
fn forged_m_set_blocks_completion_only() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 3);
    let id = MwId::standalone(1, Pid::new(1), Pid::new(2));
    // Moderator p2 replaces its M broadcast with a singleton set.
    net.set_tamper(Pid::new(2), |_to, msg| {
        if msg.wire_kind() != WireKind::MwMInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb { slot, origin, .. } = msg.clone().unpack() else {
            return Tamper::Keep;
        };
        let forged: ProcessSet = [Pid::new(3)].into_iter().collect();
        Tamper::Replace(vec![SvssMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Set(forged),
        )])
    });
    net.mw_share(id, f(5));
    net.mw_set_moderator_input(id, f(5));
    net.run();
    // The dealer cannot validate the forged M̂ (it only has one member, so
    // the OK gate may or may not fire) — but no honest process may end up
    // with an output that differs from another's.
    net.mw_reconstruct_all(id);
    net.run();
    let outs: Vec<Option<Gf61>> = [1u32, 3, 4]
        .iter()
        .filter_map(|&i| net.engine(Pid::new(i)).mw_output(id))
        .map(Reconstructed::value)
        .collect();
    let non_bottom: Vec<Gf61> = outs.iter().flatten().copied().collect();
    assert!(
        non_bottom.windows(2).all(|w| w[0] == w[1]),
        "forged M produced divergent non-⊥ outputs: {outs:?}"
    );
}

/// A dealer broadcasting malformed `G` sets (missing self-inclusion,
/// undersized) is ignored: share never completes, nothing panics.
#[test]
fn invalid_gsets_are_ignored() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 5);
    let sid = SvssId::new(1, Pid::new(1));
    net.set_tamper(Pid::new(1), |_to, msg| {
        if msg.wire_kind() != WireKind::GsetsInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb { slot, origin, .. } = msg.clone().unpack() else {
            return Tamper::Keep;
        };
        // Broadcast G sets without self-inclusion.
        let g: ProcessSet = Pid::all(3).collect();
        let members: Vec<(Pid, ProcessSet)> = Pid::all(3)
            .map(|j| {
                let others: ProcessSet = Pid::all(4).filter(|&l| l != j).collect();
                (j, others)
            })
            .collect();
        Tamper::Replace(vec![SvssMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Gsets(Box::new(GsetsBody { g, members })),
        )])
    });
    net.share(sid, f(9));
    net.run();
    for p in Pid::all(4).skip(1) {
        assert!(
            !net.engine(p).share_completed(sid),
            "{p} accepted invalid G sets"
        );
    }
}

/// Malformed private messages (wrong vector sizes, bogus ids) are dropped
/// without panicking and without corrupting live sessions.
#[test]
fn malformed_messages_are_inert() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 6);
    let sid = SvssId::new(1, Pid::new(1));
    net.share(sid, f(77));
    // Inject garbage from p4 into everyone.
    let bogus_mw = MwId::standalone(2, Pid::new(99), Pid::new(98));
    for to in Pid::all(4) {
        net.push_raw(
            Pid::new(4),
            to,
            SvssMsg::private(SvssPriv::MwDeal {
                mw: bogus_mw,
                deal: Box::new(MwDealBody {
                    others: vec![f(1); 2], // wrong length (n−1 = 3 expected)
                    monitor_poly: vec![f(1); 9],
                    moderator_poly: None,
                }),
            }),
        );
        net.push_raw(
            Pid::new(4),
            to,
            SvssMsg::private(SvssPriv::Rows {
                session: sid,
                rows: Box::new(RowsBody {
                    g: vec![f(1); 9], // degree too high AND from non-dealer
                    h: vec![],
                }),
            }),
        );
    }
    net.run();
    assert!(net.all_shares_completed(sid));
    net.reconstruct_all(sid);
    net.run();
    for (p, out) in net.outputs(sid) {
        assert_eq!(out.and_then(Reconstructed::value), Some(f(77)), "{p}");
    }
}

/// Lemma 1(b) liveness: after a fully honest share + reconstruct, every
/// ACK/DEAL expectation has been resolved at every process.
#[test]
fn expectations_drain_after_reconstruct() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 8);
    let id = MwId::standalone(1, Pid::new(2), Pid::new(3));
    net.mw_share(id, f(3));
    net.mw_set_moderator_input(id, f(3));
    net.run();
    net.mw_reconstruct_all(id);
    net.run();
    for p in Pid::all(4) {
        let (ack, deal) = net.engine(p).dmm().expectation_counts();
        assert_eq!(
            (ack, deal),
            (0, 0),
            "{p} has unresolved expectations after full reconstruct"
        );
    }
}

/// Shunning is monotone and bounded: repeating the forging attack across
/// many sessions never produces more than t(n−t) distinct pairs, and the
/// attacker is eventually fully muted (later sessions run clean).
#[test]
fn repeated_attacks_saturate_shun_pairs() {
    let params = Params::new(4, 1).unwrap();
    let n = 4;
    let t = 1;
    let mut net = SvssNet::<Gf61>::new(params, 13);
    let liar = Pid::new(4);
    net.set_tamper(liar, |_to, msg| {
        if msg.wire_kind() != WireKind::MwReconInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb {
            slot,
            origin,
            value: SvssRbValue::Value(v),
            ..
        } = msg.clone().unpack()
        else {
            return Tamper::Keep;
        };
        debug_assert_eq!(slot.kind(), SlotKind::MwRecon);
        Tamper::Replace(vec![SvssMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Value(v + Gf61::from_u64(2)),
        )])
    });
    for session in 1..=5u64 {
        let id = MwId::standalone(session, Pid::new(1), Pid::new(2));
        net.mw_share(id, f(session * 7));
        net.mw_set_moderator_input(id, f(session * 7));
        net.run();
        net.mw_reconstruct_all(id);
        net.run();
    }
    let mut pairs = net.shun_pairs();
    pairs.sort();
    pairs.dedup();
    assert!(
        pairs.len() <= t * (n - t),
        "shun pairs exceed bound: {pairs:?}"
    );
    for (_, shunned) in &pairs {
        assert_eq!(*shunned, liar, "only the liar may be shunned");
    }
}

/// The standalone-MW event stream reports exactly one completion and one
/// output per session per process.
#[test]
fn events_are_exactly_once() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 21);
    let id = MwId::standalone(1, Pid::new(1), Pid::new(2));
    net.mw_share(id, f(4));
    net.mw_set_moderator_input(id, f(4));
    net.run();
    net.mw_reconstruct_all(id);
    net.run();
    for p in Pid::all(4) {
        let completions = net
            .events(p)
            .iter()
            .filter(|e| matches!(e, SvssEvent::MwShareCompleted(i) if *i == id))
            .count();
        let outputs = net
            .events(p)
            .iter()
            .filter(|e| matches!(e, SvssEvent::MwReconstructed(i, _) if *i == id))
            .count();
        assert_eq!((completions, outputs), (1, 1), "{p}");
    }
}

/// Memory hygiene (Theorem 1 mentions polynomial memory): after a full
/// share + reconstruct, finished MW machines and the reconstruct log are
/// dropped.
#[test]
fn finished_sessions_are_garbage_collected() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 30);
    let sid = SvssId::new(1, Pid::new(1));
    net.share(sid, f(11));
    net.run();
    net.reconstruct_all(sid);
    net.run();
    // n = 4 creates 4·C(4,2) = 24 MW invocations; every *reconstructed*
    // one must be dropped. Sessions of pairs outside the frozen Ĝ never
    // reconstruct and legitimately stay resident (bounded by the session).
    for p in Pid::all(4) {
        assert!(
            net.engine(p).mw_machine_count() <= 12,
            "{p}: reconstructed MW machines must be dropped (left {})",
            net.engine(p).mw_machine_count()
        );
        assert_eq!(
            net.engine(p).dmm().recon_log_len(),
            0,
            "{p}: reconstruct log must be pruned"
        );
        // Outputs survive the GC.
        assert_eq!(
            net.engine(p).output(sid).and_then(Reconstructed::value),
            Some(f(11))
        );
    }
}

/// Liveness sanity: at quiescence of an honest multi-session run, no
/// message is still sitting in any DMM delay buffer.
#[test]
fn no_messages_left_delayed_in_honest_runs() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 40);
    for round in 1..=3u64 {
        let sid = SvssId::new(round, Pid::new(((round % 4) + 1) as u32));
        net.share(sid, f(round * 13));
        net.run();
        net.reconstruct_all(sid);
        net.run();
    }
    for p in Pid::all(4) {
        assert_eq!(
            net.engine(p).pending_len(),
            0,
            "{p}: messages stuck in the delay buffer"
        );
    }
}
