//! SVSS property tests (paper §2.1, §4): Validity of Termination,
//! Termination, Validity, Binding, and shunning — across seeds, fault
//! patterns, and Byzantine dealers.

use sba_broadcast::Params;
use sba_field::{Field, Gf101, Gf61};
use sba_net::{Pid, SvssId};
use sba_svss::harness::{SvssNet, Tamper};
use sba_svss::{Reconstructed, RowsBody, SvssMsg, SvssPriv};

fn f(v: u64) -> Gf61 {
    Gf61::from_u64(v)
}

/// Validity of Termination + Validity + Termination, fault-free, across
/// seeds and system sizes.
#[test]
fn honest_dealer_full_stack() {
    for (n, t) in [(4usize, 1usize), (7, 2)] {
        for seed in 0..4 {
            let params = Params::new(n, t).unwrap();
            let mut net = SvssNet::<Gf61>::new(params, seed);
            let sid = SvssId::new(1, Pid::new(1));
            net.share(sid, f(500 + seed));
            net.run();
            assert!(net.all_shares_completed(sid), "n={n} seed={seed}");
            net.reconstruct_all(sid);
            net.run();
            for (p, out) in net.outputs(sid) {
                assert_eq!(
                    out.and_then(Reconstructed::value),
                    Some(f(500 + seed)),
                    "n={n} seed={seed} {p}"
                );
            }
            assert!(net.shun_pairs().is_empty());
        }
    }
}

/// Validity with the maximum number of *silent* faulty processes: the
/// quorum math must carry an honest dealer through.
#[test]
fn honest_dealer_with_max_silent_faults() {
    for (n, t, silent) in [(4usize, 1usize, vec![4u32]), (7, 2, vec![6, 7])] {
        let params = Params::new(n, t).unwrap();
        let mut net = SvssNet::<Gf61>::new(params, 17);
        for &s in &silent {
            net.silence(Pid::new(s));
        }
        let sid = SvssId::new(1, Pid::new(1));
        net.share(sid, f(321));
        net.run();
        assert!(
            net.all_shares_completed(sid),
            "n={n}: share must complete despite {} silent",
            silent.len()
        );
        net.reconstruct_all(sid);
        net.run();
        for (p, out) in net.outputs(sid) {
            assert_eq!(
                out.and_then(Reconstructed::value),
                Some(f(321)),
                "n={n} {p}"
            );
        }
    }
}

/// A Byzantine SVSS dealer that hands out inconsistent rows: honest
/// processes must never disagree on non-⊥ outputs unless someone shuns a
/// new faulty process (Binding).
#[test]
fn inconsistent_rows_dealer_binding() {
    for seed in 0..12 {
        let params = Params::new(4, 1).unwrap();
        let mut net = SvssNet::<Gf61>::new(params, seed);
        let dealer = Pid::new(1);
        let sid = SvssId::new(1, dealer);
        // The dealer corrupts the rows it sends to p3: g and h shifted.
        net.set_tamper(dealer, |to, msg| {
            if to != Pid::new(3) {
                return Tamper::Keep;
            }
            match msg.clone().unpack() {
                sba_net::Unpacked::Priv(SvssPriv::Rows { session, rows }) => {
                    let bump = |v: &[Gf61]| -> Vec<Gf61> {
                        let mut v = v.to_vec();
                        if let Some(c) = v.first_mut() {
                            *c += Gf61::from_u64(5);
                        }
                        v
                    };
                    Tamper::Replace(vec![SvssMsg::private(SvssPriv::Rows {
                        session,
                        rows: Box::new(RowsBody {
                            g: bump(&rows.g),
                            h: bump(&rows.h),
                        }),
                    })])
                }
                _ => Tamper::Keep,
            }
        });
        net.share(sid, f(42));
        net.run();
        net.reconstruct_all(sid);
        net.run();

        // Binding: among honest p2, p3, p4, all non-⊥ outputs must agree
        // — or a shun pair names the dealer.
        let outs: Vec<Option<Gf61>> = [2u32, 3, 4]
            .iter()
            .filter_map(|&i| net.engine(Pid::new(i)).output(sid))
            .map(Reconstructed::value)
            .collect();
        let non_bottom: Vec<Gf61> = outs.iter().flatten().copied().collect();
        let all_agree = non_bottom.windows(2).all(|w| w[0] == w[1]);
        assert!(
            all_agree || !net.shun_pairs().is_empty(),
            "seed {seed}: disagreement {outs:?} without shunning"
        );
    }
}

/// With inconsistent rows, the corrupted pair's MW moderation blocks: the
/// pair {3, l} sessions cannot complete unless values match, so G excludes
/// the conflict and the share still completes with a consistent grid.
#[test]
fn moderation_excludes_conflicting_pairs() {
    let params = Params::new(7, 2).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 23);
    let dealer = Pid::new(1);
    let sid = SvssId::new(1, dealer);
    net.set_tamper(dealer, |to, msg| {
        if to != Pid::new(3) {
            return Tamper::Keep;
        }
        match msg.clone().unpack() {
            sba_net::Unpacked::Priv(SvssPriv::Rows { session, rows }) => {
                let bump = |v: &[Gf61]| -> Vec<Gf61> {
                    let mut v = v.to_vec();
                    if let Some(c) = v.first_mut() {
                        *c += Gf61::from_u64(5);
                    }
                    v
                };
                Tamper::Replace(vec![SvssMsg::private(SvssPriv::Rows {
                    session,
                    rows: Box::new(RowsBody {
                        g: bump(&rows.g),
                        h: bump(&rows.h),
                    }),
                })])
            }
            _ => Tamper::Keep,
        }
    });
    net.share(sid, f(42));
    net.run();
    // n = 7, t = 2: even with p3's pairs broken, 6 processes can form G.
    assert!(net.all_shares_completed(sid));
    net.reconstruct_all(sid);
    net.run();
    // All honest processes output the true secret: the corrupted rows
    // never made it into the committed grid.
    for (p, out) in net.outputs(sid) {
        if p == dealer || p == Pid::new(3) {
            continue;
        }
        assert_eq!(out.and_then(Reconstructed::value), Some(f(42)), "{p}");
    }
}

/// Hiding sanity: no output events before reconstruct is invoked.
#[test]
fn no_premature_outputs() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 3);
    let sid = SvssId::new(1, Pid::new(2));
    net.share(sid, f(777));
    net.run();
    for p in Pid::all(4) {
        assert!(net.engine(p).output(sid).is_none());
    }
}

/// Concurrent sessions from different dealers do not interfere.
#[test]
fn concurrent_sessions_isolated() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 8);
    let s1 = SvssId::new(1, Pid::new(1));
    let s2 = SvssId::new(1, Pid::new(2));
    let s3 = SvssId::new(2, Pid::new(1)); // same dealer, second session
    net.share(s1, f(10));
    net.share(s2, f(20));
    net.share(s3, f(30));
    net.run();
    for sid in [s1, s2, s3] {
        assert!(net.all_shares_completed(sid));
        net.reconstruct_all(sid);
    }
    net.run();
    for (sid, want) in [(s1, 10u64), (s2, 20), (s3, 30)] {
        for (p, out) in net.outputs(sid) {
            assert_eq!(out.and_then(Reconstructed::value), Some(f(want)), "{p}");
        }
    }
}

/// The whole stack is field-generic: a run over the tiny field GF(101).
#[test]
fn works_over_small_field() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf101>::new(params, 5);
    let sid = SvssId::new(1, Pid::new(4));
    net.share(sid, Gf101::from_u64(77));
    net.run();
    net.reconstruct_all(sid);
    net.run();
    for (p, out) in net.outputs(sid) {
        assert_eq!(
            out.and_then(Reconstructed::value),
            Some(Gf101::from_u64(77)),
            "{p}"
        );
    }
}

/// Session ordering sanity for the DMM: a dealer that already completed a
/// session can immediately run another one.
#[test]
fn sequential_sessions_chain() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 2);
    for round in 1..=3u64 {
        let sid = SvssId::new(round, Pid::new(1));
        net.share(sid, f(round * 100));
        net.run();
        net.reconstruct_all(sid);
        net.run();
        for (p, out) in net.outputs(sid) {
            assert_eq!(
                out.and_then(Reconstructed::value),
                Some(f(round * 100)),
                "round {round} {p}"
            );
        }
    }
}
