//! MW-SVSS property tests (paper §2.2, §3.2): Moderated Validity of
//! Termination, Termination, Validity, Weak and Moderated Binding, and the
//! shunning behaviour — driven through the deterministic harness with
//! seeded random schedules and tampering adversaries.

use sba_broadcast::Params;
use sba_field::{Field, Gf61};
use sba_net::{MwId, Pid};
use sba_svss::harness::{SvssNet, Tamper};
use sba_svss::{Reconstructed, SvssEvent, SvssMsg, SvssPriv};

fn f(v: u64) -> Gf61 {
    Gf61::from_u64(v)
}

fn standalone(tag: u64, dealer: u32, moderator: u32) -> MwId {
    MwId::standalone(tag, Pid::new(dealer), Pid::new(moderator))
}

fn mw_outputs(net: &SvssNet<Gf61>, id: MwId, n: usize) -> Vec<Option<Reconstructed<Gf61>>> {
    Pid::all(n).map(|p| net.engine(p).mw_output(id)).collect()
}

/// Moderated Validity of Termination + Validity: honest dealer & moderator
/// with equal inputs — everyone completes `S′` and reconstructs `s`.
#[test]
fn honest_dealer_and_moderator_reconstruct_secret() {
    for seed in 0..8 {
        let params = Params::new(4, 1).unwrap();
        let mut net = SvssNet::<Gf61>::new(params, seed);
        let id = standalone(1, 2, 3);
        net.mw_share(id, f(77));
        net.mw_set_moderator_input(id, f(77));
        net.run();
        net.mw_reconstruct_all(id);
        net.run();
        for out in mw_outputs(&net, id, 4) {
            assert_eq!(
                out.and_then(Reconstructed::value),
                Some(f(77)),
                "seed {seed}"
            );
        }
        assert!(net.shun_pairs().is_empty(), "no shunning in honest runs");
    }
}

/// Larger system, max faults silent: n = 7, t = 2, two processes silent.
#[test]
fn tolerates_max_silent_faults() {
    let params = Params::new(7, 2).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 3);
    net.silence(Pid::new(6));
    net.silence(Pid::new(7));
    let id = standalone(1, 1, 2);
    net.mw_share(id, f(5));
    net.mw_set_moderator_input(id, f(5));
    net.run();
    net.mw_reconstruct_all(id);
    net.run();
    for p in Pid::all(5) {
        assert_eq!(
            net.engine(p).mw_output(id).and_then(Reconstructed::value),
            Some(f(5)),
            "{p} must reconstruct despite 2 silent processes"
        );
    }
}

/// Moderation: if the moderator's input differs from the dealer's secret,
/// no nonfaulty process completes the share protocol.
#[test]
fn mismatched_moderator_blocks_completion() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 7);
    let id = standalone(1, 2, 3);
    net.mw_share(id, f(10));
    net.mw_set_moderator_input(id, f(11)); // s ≠ s′
    net.run();
    for p in Pid::all(4) {
        let completed = net
            .events(p)
            .iter()
            .any(|e| matches!(e, SvssEvent::MwShareCompleted(i) if *i == id));
        assert!(!completed, "{p} must not complete with s ≠ s′");
    }
}

/// Installs the "+delta on every reconstruct point" tamper on `liar`.
fn tamper_recon_points(net: &mut SvssNet<Gf61>, liar: Pid, delta: u64) {
    net.set_tamper(liar, move |_to, msg| {
        use sba_net::{RbStep, SvssRbValue, Unpacked, WireKind};
        if msg.wire_kind() != WireKind::MwReconInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb {
            slot,
            origin,
            value: SvssRbValue::Value(v),
            ..
        } = msg.clone().unpack()
        else {
            return Tamper::Keep;
        };
        Tamper::Replace(vec![SvssMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Value(v + Gf61::from_u64(delta)),
        )])
    });
}

/// Forces `target`'s confirmations to land first, so every monitor's
/// frozen `L_j` contains `target` (L freezes at the first n−t confirmers).
fn prioritize_share_traffic_of(net: &mut SvssNet<Gf61>, target: Pid) {
    net.deliver_matching(|from, _to, msg| {
        use sba_net::WireKind;
        let deal = msg.wire_kind() == WireKind::MwDeal;
        let rb_from_target = !msg.wire_kind().is_coin_rb() && msg.origin() == Some(target);
        deal || from == target || rb_from_target
    });
}

/// Weak binding under a lying confirmer, schedule-independent form: for
/// every schedule, every non-⊥ output among honest processes equals the
/// committed value — or the liar is shunned.
#[test]
fn lying_confirmer_binding_property() {
    let mut detections = 0;
    for seed in 0..16 {
        let params = Params::new(4, 1).unwrap();
        let mut net = SvssNet::<Gf61>::new(params, seed);
        let id = standalone(1, 2, 3);
        let liar = Pid::new(4);
        tamper_recon_points(&mut net, liar, 1);
        net.mw_share(id, f(42));
        net.mw_set_moderator_input(id, f(42));
        net.run();
        net.mw_reconstruct_all(id);
        net.run();

        let honest: Vec<Pid> = [1u32, 2, 3].iter().map(|&i| Pid::new(i)).collect();
        let values: Vec<Option<Gf61>> = honest
            .iter()
            .map(|&p| {
                net.engine(p)
                    .mw_output(id)
                    .expect("termination: all honest processes output")
                    .value()
            })
            .collect();
        let disagreement = values.iter().flatten().any(|&v| v != f(42));
        if disagreement {
            assert!(
                net.shun_pairs().iter().any(|&(_, bad)| bad == liar),
                "seed {seed}: binding broken without shunning the liar"
            );
        }
        if net.shun_pairs().iter().any(|&(_, bad)| bad == liar) {
            detections += 1;
        }
    }
    assert!(
        detections > 0,
        "detection path never exercised across 16 seeds"
    );
}

/// Deterministic detection: when the liar is in the confirmer sets (forced
/// by scheduling its share traffic first), its forged reconstruction
/// points mismatch the dealer's ACK expectations and the dealer shuns it.
#[test]
fn lying_confirmer_guaranteed_detection() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 9);
    let id = standalone(1, 2, 3);
    let liar = Pid::new(4);
    tamper_recon_points(&mut net, liar, 1);
    net.mw_share(id, f(42));
    net.mw_set_moderator_input(id, f(42));
    prioritize_share_traffic_of(&mut net, liar);
    net.run();
    net.mw_reconstruct_all(id);
    net.run();
    assert!(
        net.shun_pairs().contains(&(Pid::new(2), liar)),
        "dealer must shun the lying confirmer: {:?}",
        net.shun_pairs()
    );
}

/// Shunning has teeth: after being detected, the liar's messages in later
/// sessions are discarded by the shunner (rule 4).
#[test]
fn shunned_process_is_ignored_in_later_sessions() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 5);
    let id1 = standalone(1, 2, 3);
    let liar = Pid::new(4);
    tamper_recon_points(&mut net, liar, 9);
    net.mw_share(id1, f(1));
    net.mw_set_moderator_input(id1, f(1));
    prioritize_share_traffic_of(&mut net, liar);
    net.run();
    net.mw_reconstruct_all(id1);
    net.run();
    let dealer = Pid::new(2);
    assert!(net.engine(dealer).dmm().is_detected(liar));

    // A later session: the dealer must discard the liar's private traffic.
    // The liar goes fail-silent for this session (its honest-path traffic
    // would otherwise make completion depend on whether the dealer's
    // discarded acks keep it out of the confirmer sets — a schedule
    // accident, not the property under test); the injected forgery below
    // is the only thing it "sends".
    net.silence(liar);
    let id2 = standalone(2, 2, 3);
    net.mw_share(id2, f(2));
    net.mw_set_moderator_input(id2, f(2));
    // Inject a hand-crafted private message from the liar to the dealer.
    net.push_raw(
        liar,
        dealer,
        SvssMsg::private(SvssPriv::MwPoint {
            mw: id2,
            value: f(99),
        }),
    );
    net.run();
    // The session still completes (n−t quorums exclude the liar)…
    net.mw_reconstruct_all(id2);
    net.run();
    assert_eq!(
        net.engine(dealer)
            .mw_output(id2)
            .and_then(Reconstructed::value),
        Some(f(2))
    );
}

/// Termination: once one honest process completes `S′`, all do — even if
/// the dealer crashes right after dealing (its RB traffic still resolves).
#[test]
fn share_completion_propagates() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 11);
    let id = standalone(1, 1, 2);
    net.mw_share(id, f(3));
    net.mw_set_moderator_input(id, f(3));
    net.run();
    let completed: Vec<bool> = Pid::all(4)
        .map(|p| {
            net.events(p)
                .iter()
                .any(|e| matches!(e, SvssEvent::MwShareCompleted(i) if *i == id))
        })
        .collect();
    assert!(
        completed.iter().all(|&c| c) || completed.iter().all(|&c| !c),
        "share completion must be all-or-nothing at quiescence: {completed:?}"
    );
    assert!(completed[0], "honest run must complete");
}

/// Hiding (sanity form): before any reconstruct, messages a single faulty
/// process received reveal at most t points of each polynomial — checked
/// here by running two shares with different secrets and confirming the
/// faulty process's *output-visible* state cannot distinguish them without
/// reconstruct. (The full statistical test is experiment E7.)
#[test]
fn no_output_before_reconstruct() {
    let params = Params::new(4, 1).unwrap();
    let mut net = SvssNet::<Gf61>::new(params, 13);
    let id = standalone(1, 2, 3);
    net.mw_share(id, f(1234));
    net.mw_set_moderator_input(id, f(1234));
    net.run();
    for p in Pid::all(4) {
        assert!(net.engine(p).mw_output(id).is_none());
    }
}
