//! SCC property tests (paper Definition 2): termination, common-value
//! probability bounds, reconstruct gating, and fault tolerance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sba_broadcast::Params;
use sba_coin::{CoinEngine, CoinEvent, CoinMsg};
use sba_field::Gf61;
use sba_net::Pid;

/// A deterministic mesh of coin engines (same pattern as
/// `sba_svss::harness::SvssNet`).
struct CoinNet {
    params: Params,
    engines: Vec<CoinEngine<Gf61>>,
    queue: Vec<(Pid, Pid, CoinMsg<Gf61>)>,
    rng: StdRng,
    silenced: Vec<Pid>,
    shuns: Vec<(Pid, Pid)>,
}

impl CoinNet {
    fn new(params: Params, seed: u64) -> Self {
        CoinNet {
            params,
            engines: Pid::all(params.n())
                .map(|p| CoinEngine::new(p, params, seed ^ (u64::from(p.index()) << 40)))
                .collect(),
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            silenced: Vec::new(),
            shuns: Vec::new(),
        }
    }

    fn with_engine(
        &mut self,
        p: Pid,
        f: impl FnOnce(&mut CoinEngine<Gf61>, &mut Vec<(Pid, CoinMsg<Gf61>)>),
    ) {
        let idx = (p.index() - 1) as usize;
        let mut sends = Vec::new();
        f(&mut self.engines[idx], &mut sends);
        for ev in self.engines[idx].take_events() {
            if let CoinEvent::Shunned { process } = ev {
                self.shuns.push((p, process));
            }
        }
        for (to, msg) in sends {
            self.queue.push((p, to, msg));
        }
    }

    fn start_all(&mut self, tag: u64) {
        for p in Pid::all(self.params.n()) {
            if !self.silenced.contains(&p) {
                self.with_engine(p, |e, s| e.start(tag, s));
            }
        }
    }

    fn enable_all(&mut self, tag: u64) {
        for p in Pid::all(self.params.n()) {
            if !self.silenced.contains(&p) {
                self.with_engine(p, |e, s| e.enable_reconstruct(tag, s));
            }
        }
    }

    fn run(&mut self) {
        let mut steps = 0u64;
        while !self.queue.is_empty() {
            steps += 1;
            assert!(steps <= 50_000_000, "coin harness livelock");
            let k = self.rng.gen_range(0..self.queue.len());
            let (from, to, msg) = self.queue.swap_remove(k);
            if self.silenced.contains(&to) {
                continue;
            }
            self.with_engine(to, |e, s| e.on_message(from, msg, s));
        }
    }

    fn outputs(&self, tag: u64) -> Vec<Option<bool>> {
        Pid::all(self.params.n())
            .filter(|p| !self.silenced.contains(p))
            .map(|p| self.engines[(p.index() - 1) as usize].output(tag))
            .collect()
    }
}

/// Termination + Correctness margins: across seeds, every process outputs;
/// both all-0 and all-1 runs occur with healthy frequency.
///
/// Slow tier (40 full coin runs): `cargo test -- --ignored` or
/// `--include-ignored`.
#[test]
#[ignore = "slow tier: 40-seed statistical sweep, ~20s in debug"]
fn coin_terminates_and_both_values_occur() {
    let mut all_zero = 0;
    let mut all_one = 0;
    let mut common = 0;
    const RUNS: u64 = 40;
    for seed in 0..RUNS {
        let params = Params::new(4, 1).unwrap();
        let mut net = CoinNet::new(params, seed * 7 + 1);
        net.start_all(1);
        net.enable_all(1);
        net.run();
        let outs = net.outputs(1);
        assert!(
            outs.iter().all(Option::is_some),
            "seed {seed}: coin did not terminate: {outs:?}"
        );
        let vals: Vec<bool> = outs.into_iter().flatten().collect();
        if vals.iter().all(|&v| v == vals[0]) {
            common += 1;
            if vals[0] {
                all_one += 1;
            } else {
                all_zero += 1;
            }
        }
        assert!(net.shuns.is_empty(), "honest run must not shun");
    }
    // Lemma 4 bounds are ≥ 1/4 each; leave generous slack for 40 samples.
    assert!(all_zero >= 4, "all-zero runs too rare: {all_zero}/{RUNS}");
    assert!(all_one >= 4, "all-one runs too rare: {all_one}/{RUNS}");
    assert!(
        common >= RUNS as i32 as usize * 3 / 4,
        "common outcomes too rare: {common}/{RUNS}"
    );
}

/// The coin tolerates `t` silent processes.
#[test]
fn coin_with_silent_fault() {
    for seed in 0..6 {
        let params = Params::new(4, 1).unwrap();
        let mut net = CoinNet::new(params, 100 + seed);
        net.silenced.push(Pid::new(4));
        net.start_all(1);
        net.enable_all(1);
        net.run();
        let outs = net.outputs(1);
        assert!(
            outs.iter().all(Option::is_some),
            "seed {seed}: coin with silent fault did not terminate: {outs:?}"
        );
    }
}

/// Reconstruct gating: no output before `enable_reconstruct`, output after.
#[test]
fn reconstruct_gating() {
    let params = Params::new(4, 1).unwrap();
    let mut net = CoinNet::new(params, 5);
    net.start_all(3);
    net.run();
    assert!(
        net.outputs(3).iter().all(Option::is_none),
        "no process may learn the coin before the vote lock"
    );
    net.enable_all(3);
    net.run();
    assert!(net.outputs(3).iter().all(Option::is_some));
}

/// Determinism: identical seeds give identical outcomes.
#[test]
fn coin_is_replayable() {
    let run = |seed: u64| {
        let params = Params::new(4, 1).unwrap();
        let mut net = CoinNet::new(params, seed);
        net.start_all(1);
        net.enable_all(1);
        net.run();
        net.outputs(1)
    };
    assert_eq!(run(9), run(9));
}

/// Two sequential coin sessions on the same engines (the agreement layer's
/// usage pattern).
#[test]
fn sequential_sessions() {
    let params = Params::new(4, 1).unwrap();
    let mut net = CoinNet::new(params, 77);
    for tag in 1..=2u64 {
        net.start_all(tag);
        net.enable_all(tag);
        net.run();
        assert!(
            net.outputs(tag).iter().all(Option::is_some),
            "session {tag} did not terminate"
        );
    }
}

/// Larger system: n = 7, t = 2, two silent.
///
/// Slow tier: `cargo test -- --ignored` or `--include-ignored`.
#[test]
#[ignore = "slow tier: n=7 coin run, ~16s in debug"]
fn coin_n7_with_two_silent() {
    let params = Params::new(7, 2).unwrap();
    let mut net = CoinNet::new(params, 13);
    net.silenced.push(Pid::new(6));
    net.silenced.push(Pid::new(7));
    net.start_all(1);
    net.enable_all(1);
    net.run();
    assert!(net.outputs(1).iter().all(Option::is_some));
}

/// The coin is field-generic: a full session over the tiny field GF(101)
/// (|F| = 101 > n, satisfying the paper's field-size requirement).
#[test]
fn coin_over_small_field() {
    use rand::{Rng, SeedableRng};
    use sba_field::Gf101;

    let params = Params::new(4, 1).unwrap();
    let mut engines: Vec<CoinEngine<Gf101>> = Pid::all(4)
        .map(|p| CoinEngine::new(p, params, 3 ^ (u64::from(p.index()) << 40)))
        .collect();
    let mut queue: Vec<(Pid, Pid, CoinMsg<Gf101>)> = Vec::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for p in Pid::all(4) {
        let mut sends = Vec::new();
        let e = &mut engines[(p.index() - 1) as usize];
        e.start(1, &mut sends);
        e.enable_reconstruct(1, &mut sends);
        queue.extend(sends.into_iter().map(|(to, m)| (p, to, m)));
    }
    while !queue.is_empty() {
        let k = rng.gen_range(0..queue.len());
        let (from, to, msg) = queue.swap_remove(k);
        let mut sends = Vec::new();
        engines[(to.index() - 1) as usize].on_message(from, msg, &mut sends);
        queue.extend(sends.into_iter().map(|(t2, m)| (to, t2, m)));
    }
    for p in Pid::all(4) {
        assert!(
            engines[(p.index() - 1) as usize].output(1).is_some(),
            "{p} did not flip over GF(101)"
        );
    }
}
