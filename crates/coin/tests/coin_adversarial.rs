//! SCC under active adversaries: the correctness clause-2 path (property
//! failure ⇒ new shun pair), attach-set validation, and non-canonical
//! session-id injection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sba_broadcast::Params;
use sba_coin::{CoinEngine, CoinMsg};
use sba_field::{Field, Gf61};
use sba_net::{Pid, ProcessSet, RbStep, SvssRbValue, Unpacked, WireKind};

type Msg = CoinMsg<Gf61>;

enum Tamper {
    Keep,
    Replace(Vec<Msg>),
}

type TamperFn = Box<dyn FnMut(Pid, &Msg) -> Tamper>;

/// Coin mesh with per-process outgoing tampering.
struct Net {
    params: Params,
    engines: Vec<CoinEngine<Gf61>>,
    queue: Vec<(Pid, Pid, Msg)>,
    rng: StdRng,
    tampers: Vec<Option<TamperFn>>,
    shuns: Vec<(Pid, Pid)>,
    /// Every event each engine reported, in order (the equivalence pin).
    events: Vec<Vec<sba_coin::CoinEvent>>,
}

impl Net {
    fn new(params: Params, seed: u64) -> Self {
        Net::with_mode(params, seed, true)
    }

    /// `dense = false` selects the PR 4 reference session map.
    fn with_mode(params: Params, seed: u64, dense: bool) -> Self {
        Net {
            params,
            engines: Pid::all(params.n())
                .map(|p| {
                    let mut e = CoinEngine::new(p, params, seed ^ (u64::from(p.index()) << 40));
                    e.set_dense_sessions(dense);
                    e
                })
                .collect(),
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            tampers: (0..params.n()).map(|_| None).collect(),
            shuns: Vec::new(),
            events: (0..params.n()).map(|_| Vec::new()).collect(),
        }
    }

    fn drive(&mut self, p: Pid, f: impl FnOnce(&mut CoinEngine<Gf61>, &mut Vec<(Pid, Msg)>)) {
        let idx = (p.index() - 1) as usize;
        let mut sends = Vec::new();
        f(&mut self.engines[idx], &mut sends);
        for ev in self.engines[idx].take_events() {
            if let sba_coin::CoinEvent::Shunned { process } = ev {
                self.shuns.push((p, process));
            }
            self.events[idx].push(ev);
        }
        for (to, msg) in sends {
            match self.tampers[idx].as_mut() {
                None => self.queue.push((p, to, msg)),
                Some(t) => match t(to, &msg) {
                    Tamper::Keep => self.queue.push((p, to, msg)),
                    Tamper::Replace(list) => {
                        for m in list {
                            self.queue.push((p, to, m));
                        }
                    }
                },
            }
        }
    }

    fn flip_all(&mut self, tag: u64) {
        for p in Pid::all(self.params.n()) {
            self.drive(p, |e, s| e.start(tag, s));
            self.drive(p, |e, s| e.enable_reconstruct(tag, s));
        }
        while !self.queue.is_empty() {
            let k = self.rng.gen_range(0..self.queue.len());
            let (from, to, msg) = self.queue.swap_remove(k);
            self.drive(to, |e, s| e.on_message(from, msg, s));
        }
    }

    fn outputs(&self, tag: u64) -> Vec<Option<bool>> {
        Pid::all(self.params.n())
            .map(|p| self.engines[(p.index() - 1) as usize].output(tag))
            .collect()
    }
}

/// Lemma 4 clause 2: a forging process either leaves the coin common, or
/// some honest process shuns it. Across multiple sessions the attack
/// saturates: shun pairs stay within t(n−t) and name only the liar.
#[test]
fn forger_is_shunned_or_coin_is_common() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 23);
    let liar = Pid::new(4);
    net.tampers[3] = Some(Box::new(|_to, msg| {
        if msg.wire_kind() != WireKind::MwReconInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb {
            slot,
            origin,
            value: SvssRbValue::Value(v),
            ..
        } = msg.clone().unpack()
        else {
            return Tamper::Keep;
        };
        Tamper::Replace(vec![CoinMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Value(v + Gf61::from_u64(5)),
        )])
    }));
    for tag in 1..=3u64 {
        net.flip_all(tag);
        let outs = net.outputs(tag);
        // Termination holds for the honest trio regardless.
        for p in [1u32, 2, 3] {
            assert!(outs[(p - 1) as usize].is_some(), "p{p} session {tag}");
        }
        let honest: Vec<bool> = [1usize, 2, 3].iter().filter_map(|&i| outs[i - 1]).collect();
        let common = honest.windows(2).all(|w| w[0] == w[1]);
        if !common {
            assert!(
                net.shuns.iter().any(|&(_, bad)| bad == liar),
                "session {tag}: coin not common and nobody shunned the liar"
            );
        }
    }
    let mut pairs = net.shuns.clone();
    pairs.sort();
    pairs.dedup();
    assert!(pairs.len() <= 3, "bound t(n−t): {pairs:?}");
    for (_, bad) in pairs {
        assert_eq!(bad, liar, "only the liar may be shunned");
    }
}

/// An attach broadcast with the wrong cardinality is ignored: its sender
/// is simply never accepted, and the coin still terminates on the other
/// n−t processes' attachments.
#[test]
fn malformed_attach_sets_ignored() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 31);
    net.tampers[3] = Some(Box::new(|_to, msg| {
        if msg.wire_kind() != WireKind::AttachInit {
            return Tamper::Keep;
        }
        let Unpacked::CoinRb { slot, origin, .. } = msg.clone().unpack() else {
            return Tamper::Keep;
        };
        // Oversized T set (|T| must be exactly t+1 = 2).
        let bogus: ProcessSet = Pid::all(4).collect();
        Tamper::Replace(vec![CoinMsg::coin_rb(slot, origin, RbStep::Init, bogus)])
    }));
    net.flip_all(1);
    for p in [1u32, 2, 3] {
        assert!(
            net.outputs(1)[(p - 1) as usize].is_some(),
            "p{p} must terminate despite the malformed attach"
        );
    }
    assert!(
        net.shuns.is_empty(),
        "malformed sets are not a shun offence"
    );
}

/// The reconstruct-point forger used by the equivalence sweep (the same
/// attack as [`forger_is_shunned_or_coin_is_common`], built twice so two
/// meshes can run it in lockstep).
fn forger_tamper() -> TamperFn {
    Box::new(|_to, msg| {
        if msg.wire_kind() != WireKind::MwReconInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb {
            slot,
            origin,
            value: SvssRbValue::Value(v),
            ..
        } = msg.clone().unpack()
        else {
            return Tamper::Keep;
        };
        Tamper::Replace(vec![CoinMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Value(v + Gf61::from_u64(5)),
        )])
    })
}

/// Drives two meshes through one coin session under ONE shared schedule
/// RNG, asserting after every delivery that their queues evolved
/// identically (same length, same chosen entry).
fn lockstep_flip(a: &mut Net, b: &mut Net, tag: u64, schedule_seed: u64) {
    let n = a.params.n();
    for p in Pid::all(n) {
        a.drive(p, |e, s| e.start(tag, s));
        b.drive(p, |e, s| e.start(tag, s));
        a.drive(p, |e, s| e.enable_reconstruct(tag, s));
        b.drive(p, |e, s| e.enable_reconstruct(tag, s));
    }
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut step = 0u64;
    while !a.queue.is_empty() || !b.queue.is_empty() {
        assert_eq!(
            a.queue.len(),
            b.queue.len(),
            "tag {tag} step {step}: queue lengths diverged"
        );
        let k = rng.gen_range(0..a.queue.len());
        let (fa, ta, ma) = a.queue.swap_remove(k);
        let (fb, tb, mb) = b.queue.swap_remove(k);
        assert_eq!(
            (fa, ta, &ma),
            (fb, tb, &mb),
            "tag {tag} step {step}: queued message diverged"
        );
        a.drive(ta, |e, s| e.on_message(fa, ma, s));
        b.drive(tb, |e, s| e.on_message(fb, mb, s));
        step += 1;
    }
}

/// PR 5 equivalence wall: the dense interned session slab (with
/// retirement) and the PR 4 reference map are **bit-identical** through
/// the full adversarial sweep — same message trace delivery for
/// delivery, same per-process `CoinEvent` streams, same outputs, same
/// shun pairs — while the dense mode actually retires the sessions the
/// sweep completes (the mirror of `tests/tests/batching.rs` for the
/// session store).
#[test]
fn dense_sessions_match_reference_map_through_adversarial_sweep() {
    let params = Params::new(4, 1).unwrap();
    let mut dense = Net::with_mode(params, 23, true);
    let mut map = Net::with_mode(params, 23, false);
    // The same forging adversary corrupts both meshes.
    dense.tampers[3] = Some(forger_tamper());
    map.tampers[3] = Some(forger_tamper());
    for tag in 1..=3u64 {
        lockstep_flip(&mut dense, &mut map, tag, 0xE0_0123 ^ tag);
        assert_eq!(dense.outputs(tag), map.outputs(tag), "tag {tag}");
    }
    assert_eq!(dense.events, map.events, "event streams diverged");
    assert_eq!(dense.shuns, map.shuns, "shun pairs diverged");
    for p in Pid::all(4) {
        let e_dense = &dense.engines[(p.index() - 1) as usize];
        let e_map = &map.engines[(p.index() - 1) as usize];
        // RB-layer accounting is store-independent.
        assert_eq!(e_dense.rb_instance_stats(), e_map.rb_instance_stats());
        let (live_d, peak_d, retired_d) = e_dense.session_stats();
        let (live_m, _, retired_m) = e_map.session_stats();
        // The map keeps every session forever; the slab retires the
        // fully-drained ones and recycles their slots.
        assert_eq!(retired_m, 0);
        assert_eq!(live_d + retired_d, live_m, "{p}: sessions lost");
        assert!(
            retired_d >= 1,
            "{p}: a fully drained honest sweep must retire sessions \
             (live={live_d} peak={peak_d} retired={retired_d})"
        );
    }
}

/// Session retirement edge cases (companion to
/// `tests/tests/retirement.rs`): after a session retires, late,
/// duplicate, and tampered coin messages for it — the full replayed
/// inbox plus conflicting-set variants of every RB step — are dropped
/// without output, without sends, and without resurrecting the slot;
/// `start` and `enable_reconstruct` re-invocations are equally inert;
/// `output()` still answers from the record.
#[test]
fn retired_sessions_drop_late_duplicate_and_tampered_traffic() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 51);
    // Record every message p2 ever received so it can be replayed later.
    let mut p2_inbox: Vec<(Pid, Msg)> = Vec::new();
    {
        let tag = 1u64;
        for p in Pid::all(4) {
            net.drive(p, |e, s| e.start(tag, s));
            net.drive(p, |e, s| e.enable_reconstruct(tag, s));
        }
        while !net.queue.is_empty() {
            let k = net.rng.gen_range(0..net.queue.len());
            let (from, to, msg) = net.queue.swap_remove(k);
            if to == Pid::new(2) {
                p2_inbox.push((from, msg.clone()));
            }
            net.drive(to, |e, s| e.on_message(from, msg, s));
        }
    }
    let p2 = &mut net.engines[1];
    let value = p2.output(1).expect("honest flip terminates");
    let (live_before, peak_before, retired_before) = p2.session_stats();
    assert!(retired_before >= 1, "session 1 must have retired");
    let events_before = net.events[1].len();

    // Replay p2's whole inbox (duplicates) and a tampered variant of
    // every coin-RB message (conflicting sets, every RB step). All must
    // be inert: any answer would land in `net.queue`.
    assert!(net.queue.is_empty());
    for (from, msg) in p2_inbox.clone() {
        net.drive(Pid::new(2), |e, s| e.on_message(from, msg, s));
    }
    for (from, msg) in p2_inbox {
        if !msg.wire_kind().is_coin_rb() {
            continue;
        }
        let Unpacked::CoinRb { slot, origin, .. } = msg.unpack() else {
            unreachable!()
        };
        for step in [RbStep::Init, RbStep::Echo, RbStep::Ready] {
            let bogus: ProcessSet = Pid::all(3).collect();
            let tampered = CoinMsg::coin_rb(slot, origin, step, bogus);
            net.drive(Pid::new(2), |e, s| e.on_message(from, tampered, s));
        }
    }
    let p2 = &mut net.engines[1];
    let mut sends = Vec::new();
    p2.start(1, &mut sends);
    p2.enable_reconstruct(1, &mut sends);
    assert!(sends.is_empty(), "retired session restarted: {sends:?}");
    assert!(
        net.queue.is_empty(),
        "retired session answered: {:?}",
        net.queue
    );
    let p2 = &net.engines[1];
    assert_eq!(
        p2.session_stats(),
        (live_before, peak_before, retired_before),
        "slot resurrected"
    );
    assert_eq!(p2.output(1), Some(value), "record lost");
    assert_eq!(
        net.events[1].len(),
        events_before,
        "late traffic produced events: {:?}",
        &net.events[1][events_before..]
    );
}

/// Values are never leaked before reconstruct is enabled, even with an
/// eager adversary that enables its own reconstruction immediately.
#[test]
fn early_enabler_cannot_force_output() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 37);
    // Everyone starts; ONLY p4 enables reconstruct.
    for p in Pid::all(4) {
        net.drive(p, |e, s| e.start(1, s));
    }
    net.drive(Pid::new(4), |e, s| e.enable_reconstruct(1, s));
    while !net.queue.is_empty() {
        let k = net.rng.gen_range(0..net.queue.len());
        let (from, to, msg) = net.queue.swap_remove(k);
        net.drive(to, |e, s| e.on_message(from, msg, s));
    }
    // p1..p3 must not have output (their gate is closed); p4 alone cannot
    // reconstruct degree-t secrets: SVSS-R needs all honest to begin R.
    for p in [1u32, 2, 3] {
        assert_eq!(net.outputs(1)[(p - 1) as usize], None, "p{p} leaked");
    }
    assert_eq!(net.outputs(1)[3], None, "p4 alone cannot reconstruct");
}
