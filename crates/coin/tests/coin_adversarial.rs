//! SCC under active adversaries: the correctness clause-2 path (property
//! failure ⇒ new shun pair), attach-set validation, and non-canonical
//! session-id injection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sba_broadcast::Params;
use sba_coin::{CoinEngine, CoinMsg};
use sba_field::{Field, Gf61};
use sba_net::{Pid, ProcessSet, RbStep, SvssRbValue, Unpacked, WireKind};

type Msg = CoinMsg<Gf61>;

enum Tamper {
    Keep,
    Replace(Vec<Msg>),
}

type TamperFn = Box<dyn FnMut(Pid, &Msg) -> Tamper>;

/// Coin mesh with per-process outgoing tampering.
struct Net {
    params: Params,
    engines: Vec<CoinEngine<Gf61>>,
    queue: Vec<(Pid, Pid, Msg)>,
    rng: StdRng,
    tampers: Vec<Option<TamperFn>>,
    shuns: Vec<(Pid, Pid)>,
}

impl Net {
    fn new(params: Params, seed: u64) -> Self {
        Net {
            params,
            engines: Pid::all(params.n())
                .map(|p| CoinEngine::new(p, params, seed ^ (u64::from(p.index()) << 40)))
                .collect(),
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            tampers: (0..params.n()).map(|_| None).collect(),
            shuns: Vec::new(),
        }
    }

    fn drive(&mut self, p: Pid, f: impl FnOnce(&mut CoinEngine<Gf61>, &mut Vec<(Pid, Msg)>)) {
        let idx = (p.index() - 1) as usize;
        let mut sends = Vec::new();
        f(&mut self.engines[idx], &mut sends);
        for ev in self.engines[idx].take_events() {
            if let sba_coin::CoinEvent::Shunned { process } = ev {
                self.shuns.push((p, process));
            }
        }
        for (to, msg) in sends {
            match self.tampers[idx].as_mut() {
                None => self.queue.push((p, to, msg)),
                Some(t) => match t(to, &msg) {
                    Tamper::Keep => self.queue.push((p, to, msg)),
                    Tamper::Replace(list) => {
                        for m in list {
                            self.queue.push((p, to, m));
                        }
                    }
                },
            }
        }
    }

    fn flip_all(&mut self, tag: u64) {
        for p in Pid::all(self.params.n()) {
            self.drive(p, |e, s| e.start(tag, s));
            self.drive(p, |e, s| e.enable_reconstruct(tag, s));
        }
        while !self.queue.is_empty() {
            let k = self.rng.gen_range(0..self.queue.len());
            let (from, to, msg) = self.queue.swap_remove(k);
            self.drive(to, |e, s| e.on_message(from, msg, s));
        }
    }

    fn outputs(&self, tag: u64) -> Vec<Option<bool>> {
        Pid::all(self.params.n())
            .map(|p| self.engines[(p.index() - 1) as usize].output(tag))
            .collect()
    }
}

/// Lemma 4 clause 2: a forging process either leaves the coin common, or
/// some honest process shuns it. Across multiple sessions the attack
/// saturates: shun pairs stay within t(n−t) and name only the liar.
#[test]
fn forger_is_shunned_or_coin_is_common() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 23);
    let liar = Pid::new(4);
    net.tampers[3] = Some(Box::new(|_to, msg| {
        if msg.wire_kind() != WireKind::MwReconInit {
            return Tamper::Keep;
        }
        let Unpacked::Rb {
            slot,
            origin,
            value: SvssRbValue::Value(v),
            ..
        } = msg.clone().unpack()
        else {
            return Tamper::Keep;
        };
        Tamper::Replace(vec![CoinMsg::rb(
            slot,
            origin,
            RbStep::Init,
            SvssRbValue::Value(v + Gf61::from_u64(5)),
        )])
    }));
    for tag in 1..=3u64 {
        net.flip_all(tag);
        let outs = net.outputs(tag);
        // Termination holds for the honest trio regardless.
        for p in [1u32, 2, 3] {
            assert!(outs[(p - 1) as usize].is_some(), "p{p} session {tag}");
        }
        let honest: Vec<bool> = [1usize, 2, 3].iter().filter_map(|&i| outs[i - 1]).collect();
        let common = honest.windows(2).all(|w| w[0] == w[1]);
        if !common {
            assert!(
                net.shuns.iter().any(|&(_, bad)| bad == liar),
                "session {tag}: coin not common and nobody shunned the liar"
            );
        }
    }
    let mut pairs = net.shuns.clone();
    pairs.sort();
    pairs.dedup();
    assert!(pairs.len() <= 3, "bound t(n−t): {pairs:?}");
    for (_, bad) in pairs {
        assert_eq!(bad, liar, "only the liar may be shunned");
    }
}

/// An attach broadcast with the wrong cardinality is ignored: its sender
/// is simply never accepted, and the coin still terminates on the other
/// n−t processes' attachments.
#[test]
fn malformed_attach_sets_ignored() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 31);
    net.tampers[3] = Some(Box::new(|_to, msg| {
        if msg.wire_kind() != WireKind::AttachInit {
            return Tamper::Keep;
        }
        let Unpacked::CoinRb { slot, origin, .. } = msg.clone().unpack() else {
            return Tamper::Keep;
        };
        // Oversized T set (|T| must be exactly t+1 = 2).
        let bogus: ProcessSet = Pid::all(4).collect();
        Tamper::Replace(vec![CoinMsg::coin_rb(slot, origin, RbStep::Init, bogus)])
    }));
    net.flip_all(1);
    for p in [1u32, 2, 3] {
        assert!(
            net.outputs(1)[(p - 1) as usize].is_some(),
            "p{p} must terminate despite the malformed attach"
        );
    }
    assert!(
        net.shuns.is_empty(),
        "malformed sets are not a shun offence"
    );
}

/// Values are never leaked before reconstruct is enabled, even with an
/// eager adversary that enables its own reconstruction immediately.
#[test]
fn early_enabler_cannot_force_output() {
    let params = Params::new(4, 1).unwrap();
    let mut net = Net::new(params, 37);
    // Everyone starts; ONLY p4 enables reconstruct.
    for p in Pid::all(4) {
        net.drive(p, |e, s| e.start(1, s));
    }
    net.drive(Pid::new(4), |e, s| e.enable_reconstruct(1, s));
    while !net.queue.is_empty() {
        let k = net.rng.gen_range(0..net.queue.len());
        let (from, to, msg) = net.queue.swap_remove(k);
        net.drive(to, |e, s| e.on_message(from, msg, s));
    }
    // p1..p3 must not have output (their gate is closed); p4 alone cannot
    // reconstruct degree-t secrets: SVSS-R needs all honest to begin R.
    for p in [1u32, 2, 3] {
        assert_eq!(net.outputs(1)[(p - 1) as usize], None, "p{p} leaked");
    }
    assert_eq!(net.outputs(1)[3], None, "p4 alone cannot reconstruct");
}
