#![warn(missing_docs)]

//! The shunning common coin (SCC) — §5 of Abraham–Dolev–Halpern (PODC
//! 2008), instantiating the Canetti–Rabin common-coin construction
//! (Canetti's thesis, Fig. 5-9) with SVSS in place of AVSS.
//!
//! For every coin session, each process deals `n` random secrets — one
//! *attached* to each process — via SVSS. A process is attached the sum of
//! `t+1` dealers' secrets (at least one nonfaulty, so the value is uniform
//! and hidden until reconstruction). Attach sets, acceptance sets, and
//! support sets are reliably broadcast; each process outputs **0** if any
//! process in its support union carries the value `0 (mod n)`, else **1**.
//!
//! SCC properties (Definition 2 of the paper): termination always; and for
//! each `σ ∈ {0, 1}`, with probability ≥ 1/4 *all* nonfaulty processes
//! output `σ` — unless some nonfaulty process starts shunning some new
//! faulty process in this session, which can happen at most `t(n−t)`
//! times across an entire execution.
//!
//! The [`oracle`] module provides two baselines: a perfect common coin
//! and an ε-failing Canetti–Rabin-style coin (experiments E2/E3).

mod engine;
mod messages;
pub mod oracle;

pub use engine::{CoinEngine, CoinEvent};
pub use messages::{coin_svss_id, decode_coin_svss_id, CoinMsg, CoinSlot};
