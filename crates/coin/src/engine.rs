//! The per-process SCC engine.
//!
//! # Dense session interning and retirement
//!
//! Every delivered coin message routes into per-session state keyed by
//! the session tag. PR 4 kept that state in a `FastMap<u64, CoinSession>`
//! and probed it several times per delivered message (once per absorbed
//! event and ~6 times per `pump` pass). Since PR 5 the sessions live in
//! a recycled slab behind a one-`u64`-per-bucket fingerprint index, in
//! the style of `RbMux` (crates/broadcast/src/mux.rs): the tag is
//! interned once per delivery batch, and every subsequent access is a
//! direct slab index.
//!
//! **Retirement.** A coin session's input space is finite: `2n` RB slot
//! deliveries (each RB slot delivers exactly once), `n²` SVSS share
//! completions, and the reconstructions this process invokes. Once the
//! coin value has been emitted *and* every one of those inputs has been
//! consumed (all `n` attach sets, all `n` supports, all `n²` shares, all
//! `n·(t+1)` invoked reconstructions resolved), the session is provably
//! inert — no future input can make it send or emit again — so the whole
//! state machine is dropped for a compact `(tag, value)` record and its
//! slab slot is recycled. Late, duplicate, or tampered traffic for a
//! retired session is dropped without resurrecting the slot: RB-level
//! replays die in the mux (all the session's slots are retired there),
//! and stray SVSS events for a retired tag are discarded here. In
//! adversarial runs where a Byzantine process withholds its broadcasts,
//! the gate simply never fires and the session stays live — retirement
//! is a memory optimization, never a behavior change.
//!
//! [`CoinEngine::set_dense_sessions`]`(false)` keeps the PR 4 map (no
//! interning, no retirement) as the reference mode;
//! `crates/coin/tests/coin_adversarial.rs` pins both modes to identical
//! event streams and message traces through the full adversarial sweep.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sba_broadcast::{MuxMsg, Params, RbDelivery, RbMux};
use sba_field::{Domain, Field};
use sba_net::{FastMap, FxHasher, Pid, ProcessSet, SvssId, Unpacked};
use sba_svss::{Reconstructed, SvssEngine, SvssEvent, SvssMsg};

use crate::messages::{coin_mux_of_parts, wire_of_coin_mux};
use crate::{coin_svss_id, decode_coin_svss_id, CoinMsg, CoinSlot};

/// Events reported by the coin engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoinEvent {
    /// Coin session `tag` produced an output at this process.
    Flipped {
        /// The session.
        tag: u64,
        /// The coin value.
        value: bool,
    },
    /// The underlying DMM started shunning `process` (forwarded from the
    /// SVSS layer; at most `t(n−t)` of these per execution, which bounds
    /// the number of coin sessions that may fail to be common).
    Shunned {
        /// The newly shunned process.
        process: Pid,
    },
}

/// Per-session state.
#[derive(Clone, Debug, Default)]
struct CoinSession {
    started: bool,
    /// Dealers whose secret-attached-to-me share completed, arrival order.
    my_dealers: Vec<Pid>,
    attach_broadcast: bool,
    /// Delivered attach sets `T_j`.
    t_sets: FastMap<Pid, ProcessSet>,
    /// Completed SVSS shares of this coin session (any dealer/target).
    completed_shares: BTreeSet<SvssId>,
    /// Accepted ("attached") processes.
    accepted: ProcessSet,
    support_broadcast: bool,
    /// Delivered support sets.
    supports: Vec<(Pid, ProcessSet)>,
    /// Senders of validated supports.
    validated: ProcessSet,
    /// The fixed union of the first `n−t` validated supports.
    b_set: Option<ProcessSet>,
    recon_enabled: bool,
    recon_invoked: BTreeSet<SvssId>,
    /// Reconstructed secrets.
    outputs: FastMap<SvssId, Reconstructed<Gf64Erased>>,
    output: Option<bool>,
}

impl CoinSession {
    /// Whether the session is provably inert (see the module docs): the
    /// coin value is out and every element of its finite input space has
    /// been consumed, so no future input can make it send or emit.
    fn fully_consumed(&self, n: usize, t: usize) -> bool {
        self.output.is_some()
            && self.t_sets.len() == n
            && self.supports.len() == n
            && self.completed_shares.len() == n * n
            && self.recon_invoked.len() == n * (t + 1)
            && self
                .recon_invoked
                .iter()
                .all(|sid| self.outputs.contains_key(sid))
    }
}

// The session state must not be generic over F (it lives in a plain map),
// so reconstructed values are erased to their canonical u64 form.
type Gf64Erased = u64;

/// Tag bit distinguishing live-slab indices from retired-store indices in
/// the session index's packed `u32` value (mirrors `RbMux`).
const RETIRED_BIT: u32 = 1 << 31;

/// Packed-slot value reserved as the empty-bucket sentinel.
const EMPTY_SLOT: u32 = u32::MAX;

/// Slot marker returned for map-mode sessions (no dense index exists).
const NO_SLOT: u32 = u32::MAX;

fn fx_hash(tag: u64) -> u64 {
    let mut h = FxHasher::default();
    tag.hash(&mut h);
    h.finish()
}

/// The dense store: `tag → slot` interning index (one `u64` per bucket:
/// 32-bit fingerprint + packed slot id) over a recycled live slab and an
/// append-only retired store.
#[derive(Clone, Debug, Default)]
struct DenseSessions {
    /// `(fp << 32) | packed_slot`; low word [`EMPTY_SLOT`] marks empty.
    buckets: Vec<u64>,
    mask: usize,
    interned: usize,
    /// Live sessions (with their tags); freed entries are recycled, so
    /// the slab size tracks the peak concurrently-live session count.
    live: Vec<(u64, CoinSession)>,
    /// Recycled `live` indices.
    free: Vec<u32>,
    /// Tags and coin values of retired sessions, append-only.
    retired: Vec<(u64, bool)>,
}

impl DenseSessions {
    fn new() -> Self {
        DenseSessions {
            buckets: vec![u64::MAX; 16],
            mask: 15,
            interned: 0,
            live: Vec::new(),
            free: Vec::new(),
            retired: Vec::new(),
        }
    }

    /// The tag stored alongside slot `packed`'s state.
    fn tag_of(&self, packed: u32) -> u64 {
        if packed & RETIRED_BIT != 0 {
            self.retired[(packed & !RETIRED_BIT) as usize].0
        } else {
            self.live[packed as usize].0
        }
    }

    /// Probes for `tag` under hash `h`. Returns the packed slot on a hit,
    /// or the bucket position of the first empty slot on a miss.
    fn probe(&self, h: u64, tag: u64) -> Result<u32, usize> {
        let fp = (h >> 32) as u32;
        let mut at = h as usize & self.mask;
        loop {
            let bucket = self.buckets[at];
            let slot = bucket as u32;
            if slot == EMPTY_SLOT {
                return Err(at);
            }
            if (bucket >> 32) as u32 == fp && self.tag_of(slot) == tag {
                return Ok(slot);
            }
            at = (at + 1) & self.mask;
        }
    }

    /// Doubles the index and reinserts every bucket.
    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.buckets, vec![u64::MAX; (self.mask + 1) * 2]);
        self.mask = self.buckets.len() - 1;
        for bucket in old {
            if bucket as u32 == EMPTY_SLOT {
                continue;
            }
            let h = fx_hash(self.tag_of(bucket as u32));
            let mut at = h as usize & self.mask;
            while self.buckets[at] as u32 != EMPTY_SLOT {
                at = (at + 1) & self.mask;
            }
            self.buckets[at] = (h >> 32) << 32 | u64::from(bucket as u32);
        }
    }

    /// Interns `tag`, creating a fresh live session (in a recycled slab
    /// slot when one is free) on first sight. Returns the packed slot.
    fn intern(&mut self, tag: u64) -> u32 {
        let h = fx_hash(tag);
        match self.probe(h, tag) {
            Ok(slot) => slot,
            Err(at) => {
                let idx = if let Some(idx) = self.free.pop() {
                    self.live[idx as usize] = (tag, CoinSession::default());
                    idx
                } else {
                    assert!(
                        self.live.len() < RETIRED_BIT as usize,
                        "coin session slab overflow"
                    );
                    self.live.push((tag, CoinSession::default()));
                    (self.live.len() - 1) as u32
                };
                self.buckets[at] = (h >> 32) << 32 | u64::from(idx);
                self.interned += 1;
                if self.interned * 4 > (self.mask + 1) * 3 {
                    self.grow();
                }
                idx
            }
        }
    }

    /// Retires live slot `idx`: keeps only `(tag, value)`, recycles the
    /// slab slot, and repoints the tag's bucket at the record.
    fn retire(&mut self, idx: u32) {
        let (tag, session) = &mut self.live[idx as usize];
        let tag = *tag;
        let value = session.output.expect("retire requires an emitted value");
        // Drop the whole state machine; the husk stays until recycled.
        *session = CoinSession::default();
        assert!(
            (self.retired.len() as u32) < !RETIRED_BIT,
            "coin retired-store overflow"
        );
        let record = RETIRED_BIT | self.retired.len() as u32;
        self.retired.push((tag, value));
        self.free.push(idx);
        let h = fx_hash(tag);
        let mut at = h as usize & self.mask;
        loop {
            if self.buckets[at] as u32 == idx {
                self.buckets[at] = (h >> 32) << 32 | u64::from(record);
                return;
            }
            at = (at + 1) & self.mask;
        }
    }
}

/// The session store: the PR 4 reference map, or the dense slab.
#[derive(Clone, Debug)]
enum Sessions {
    /// Reference mode: plain hash map, no retirement (PR 4 semantics).
    Map(FastMap<u64, CoinSession>),
    /// Dense interned slab with retirement (the default).
    Dense(DenseSessions),
}

impl Sessions {
    /// Interns `tag` and returns its live session plus (in dense mode)
    /// its slab index, or `None` if the session is retired.
    fn live_mut(&mut self, tag: u64) -> Option<(u32, &mut CoinSession)> {
        match self {
            Sessions::Map(map) => Some((NO_SLOT, map.entry(tag).or_default())),
            Sessions::Dense(d) => {
                let slot = d.intern(tag);
                if slot & RETIRED_BIT != 0 {
                    None
                } else {
                    Some((slot, &mut d.live[slot as usize].1))
                }
            }
        }
    }

    /// The coin output of session `tag`, if flipped (answered from the
    /// retirement record once the session is retired).
    fn output(&self, tag: u64) -> Option<bool> {
        match self {
            Sessions::Map(map) => map.get(&tag).and_then(|s| s.output),
            Sessions::Dense(d) => match d.probe(fx_hash(tag), tag) {
                Ok(slot) if slot & RETIRED_BIT != 0 => {
                    Some(d.retired[(slot & !RETIRED_BIT) as usize].1)
                }
                Ok(slot) => d.live[slot as usize].1.output,
                Err(_) => None,
            },
        }
    }

    /// `(live, peak, retired)` session counts (memory accounting).
    fn stats(&self) -> (usize, usize, usize) {
        match self {
            Sessions::Map(map) => (map.len(), map.len(), 0),
            Sessions::Dense(d) => (d.live.len() - d.free.len(), d.live.len(), d.retired.len()),
        }
    }
}

/// The shunning common coin for one process.
///
/// Drive it with [`CoinEngine::start`] (every nonfaulty process must start
/// every session), [`CoinEngine::enable_reconstruct`] (the agreement layer
/// gates this on its vote lock), and [`CoinEngine::on_message`]; collect
/// [`CoinEvent`]s with [`CoinEngine::take_events`].
#[derive(Clone)]
pub struct CoinEngine<F: Field> {
    me: Pid,
    params: Params,
    rng: StdRng,
    svss: SvssEngine<F>,
    mux: RbMux<CoinSlot, ProcessSet>,
    sessions: Sessions,
    events: Vec<CoinEvent>,
    /// Reusable batch-routing buffers for [`CoinEngine::on_batch`]
    /// (capacity survives across deliveries; allocation-free steady
    /// state). Note the nested SVSS engine shares the flat wire type, so
    /// its sends go straight into the caller's list — no rewrap buffer.
    rb_run: Vec<MuxMsg<CoinSlot, ProcessSet>>,
    rb_deliveries: Vec<RbDelivery<CoinSlot, ProcessSet>>,
    svss_batch: Vec<SvssMsg<F>>,
    /// Dense-mode touched-session bitset (one bit per live slab slot):
    /// the per-batch session pump marks slots here instead of pushing and
    /// re-sorting tags, so a batch touches each session's bit once.
    touched_bits: Vec<u64>,
    /// Map-mode touched-tag scratch, and (both modes) the per-batch list
    /// of tags to pump, in ascending order.
    touched_tags: Vec<u64>,
    /// Tags pumped since the last retirement sweep (dense mode).
    pumped: Vec<u64>,
}

impl<F: Field> CoinEngine<F> {
    /// Creates the coin engine for process `me`. The evaluation domain is
    /// built once here and shared with the whole SVSS stack underneath.
    pub fn new(me: Pid, params: Params, seed: u64) -> Self {
        let domain: Arc<Domain<F>> = Arc::new(Domain::new(params.n()));
        CoinEngine {
            me,
            params,
            rng: StdRng::seed_from_u64(seed ^ 0xC014),
            svss: SvssEngine::with_domain(me, params, seed ^ 0x5C0_FFEE, domain),
            mux: RbMux::new(me, params),
            sessions: Sessions::Dense(DenseSessions::new()),
            events: Vec::new(),
            rb_run: Vec::new(),
            rb_deliveries: Vec::new(),
            svss_batch: Vec::new(),
            touched_bits: Vec::new(),
            touched_tags: Vec::new(),
            pumped: Vec::new(),
        }
    }

    /// This process's id.
    pub fn me(&self) -> Pid {
        self.me
    }

    /// System parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Switches between the dense interned session slab (default, with
    /// retirement) and the PR 4 reference map (no retirement). The
    /// equivalence suite pins both modes bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if any session already exists.
    pub fn set_dense_sessions(&mut self, enabled: bool) {
        let (live, _, retired) = self.sessions.stats();
        assert!(
            live == 0 && retired == 0,
            "set_dense_sessions must precede the first session"
        );
        self.sessions = if enabled {
            Sessions::Dense(DenseSessions::new())
        } else {
            Sessions::Map(FastMap::default())
        };
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<CoinEvent> {
        std::mem::take(&mut self.events)
    }

    /// The coin output of session `tag`, if flipped.
    pub fn output(&self, tag: u64) -> Option<bool> {
        self.sessions.output(tag)
    }

    /// Read access to the underlying SVSS engine (for experiments).
    pub fn svss(&self) -> &SvssEngine<F> {
        &self.svss
    }

    /// `(live, peak, retired)` RB instance counts summed over this
    /// engine's own mux and the nested SVSS engine's (memory accounting).
    pub fn rb_instance_stats(&self) -> (usize, usize, usize) {
        (
            self.mux.instance_count() + self.svss.rb_live_instances(),
            self.mux.live_peak() + self.svss.rb_live_peak(),
            self.mux.retired_count() + self.svss.rb_retired_instances(),
        )
    }

    /// `(live, peak, retired)` coin-session counts (memory accounting;
    /// the reference map never retires, so there `peak == live` and
    /// `retired == 0`).
    pub fn session_stats(&self) -> (usize, usize, usize) {
        self.sessions.stats()
    }

    /// Disables shunning detection (experiment E8 ablation).
    pub fn disable_detection(&mut self) {
        self.svss.disable_detection();
    }

    /// Starts coin session `tag`: deal one random secret per process.
    ///
    /// Every nonfaulty process must call this for the session to
    /// terminate.
    pub fn start(&mut self, tag: u64, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        {
            let Some((_, session)) = self.sessions.live_mut(tag) else {
                return; // retired: the session already ran to completion
            };
            if session.started {
                return;
            }
            session.started = true;
        }
        for target in Pid::all(self.params.n()) {
            let secret = F::random(&mut self.rng);
            // The SVSS engine emits the shared flat wire type: its sends
            // go straight into the coin layer's send list.
            self.svss
                .share(coin_svss_id(tag, self.me, target), secret, sends);
        }
        self.pump(tag, sends);
        self.sweep_retirements();
    }

    /// Allows session `tag` to enter its reconstruct phase. The agreement
    /// layer calls this only after locking its vote for the round, so the
    /// adversary cannot learn the coin before honest votes are cast.
    pub fn enable_reconstruct(&mut self, tag: u64, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        let enable = match self.sessions.live_mut(tag) {
            None => false, // retired: reconstruction already resolved
            Some((_, session)) => {
                let first = !session.recon_enabled;
                session.recon_enabled = true;
                first
            }
        };
        if enable {
            self.pump(tag, sends);
            self.sweep_retirements();
        }
    }

    /// Feeds one delivered message.
    pub fn on_message(&mut self, from: Pid, msg: CoinMsg<F>, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        if msg.wire_kind().is_coin_rb() {
            let Unpacked::CoinRb {
                slot,
                origin,
                step,
                set,
            } = msg.unpack()
            else {
                unreachable!("coin RB kinds unpack as CoinRb");
            };
            let m = coin_mux_of_parts(slot, origin, step, set);
            let delivery = self.mux.on_message_with(from, m, sends, wire_of_coin_mux);
            if let Some(d) = delivery {
                if let Some((tag, _)) = self.absorb_coin_delivery(d) {
                    self.pump(tag, sends);
                }
            }
        } else {
            // SVSS traffic shares the flat wire type: feed it through and
            // let the nested engine push its sends directly into ours.
            self.svss.on_message(from, msg, sends);
            let tags = self.absorb_svss_events();
            for tag in tags {
                self.pump(tag, sends);
            }
        }
        self.sweep_retirements();
    }

    /// Feeds a whole same-sender delivery batch (drained from `msgs`):
    /// SVSS members go through the nested engine's batch path, coin RB
    /// members through the mux's batch path, and the per-session `pump`
    /// fixpoint runs **once per touched session** instead of once per
    /// message — the dominant post-delivery cost in a full run. Touched
    /// sessions are collected in the dense-index bitset (one bit per
    /// live slab slot), so the batch never re-sorts duplicate tags.
    pub fn on_batch(
        &mut self,
        from: Pid,
        msgs: &mut Vec<CoinMsg<F>>,
        sends: &mut Vec<(Pid, CoinMsg<F>)>,
    ) {
        let mut svss_batch = std::mem::take(&mut self.svss_batch);
        let mut rb_run = std::mem::take(&mut self.rb_run);
        let mut deliveries = std::mem::take(&mut self.rb_deliveries);
        for msg in msgs.drain(..) {
            if msg.wire_kind().is_coin_rb() {
                let Unpacked::CoinRb {
                    slot,
                    origin,
                    step,
                    set,
                } = msg.unpack()
                else {
                    unreachable!("coin RB kinds unpack as CoinRb");
                };
                rb_run.push(coin_mux_of_parts(slot, origin, step, set));
            } else {
                svss_batch.push(msg);
            }
        }
        if !svss_batch.is_empty() {
            self.svss.on_batch(from, &mut svss_batch, sends);
        }
        self.mux.on_batch_with(
            from,
            rb_run.drain(..),
            sends,
            wire_of_coin_mux,
            &mut deliveries,
        );
        for d in deliveries.drain(..) {
            if let Some((tag, slot)) = self.absorb_coin_delivery(d) {
                self.touch(tag, slot);
            }
        }
        for tag in self.absorb_svss_events() {
            let slot = match &self.sessions {
                Sessions::Map(_) => NO_SLOT,
                // The absorb interned the tag; a retired hit is
                // impossible here (absorb drops retired-tag events).
                Sessions::Dense(d) => d.probe(fx_hash(tag), tag).expect("absorbed tags interned"),
            };
            self.touch(tag, slot);
        }
        // `pump` recurses into sessions its own outputs touch, so the
        // scratch must be released before pumping.
        self.svss_batch = svss_batch;
        self.rb_run = rb_run;
        self.rb_deliveries = deliveries;
        let mut tags = std::mem::take(&mut self.touched_tags);
        if let Sessions::Dense(d) = &self.sessions {
            debug_assert!(tags.is_empty());
            for (w, word) in self.touched_bits.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    tags.push(d.live[w * 64 + b].0);
                }
                *word = 0;
            }
        }
        // Pump in ascending tag order — the same order the map-mode
        // sort+dedup produces, so both modes advance sessions alike.
        tags.sort_unstable();
        tags.dedup();
        for tag in &tags {
            self.pump(*tag, sends);
        }
        tags.clear();
        self.touched_tags = tags;
        self.sweep_retirements();
    }

    /// Marks a touched session for the end-of-batch pump.
    fn touch(&mut self, tag: u64, slot: u32) {
        if matches!(self.sessions, Sessions::Dense(_)) {
            let (w, b) = ((slot / 64) as usize, slot % 64);
            if w >= self.touched_bits.len() {
                self.touched_bits.resize(w + 1, 0);
            }
            self.touched_bits[w] |= 1u64 << b;
        } else {
            self.touched_tags.push(tag);
        }
    }

    /// Retires every session pumped since the last sweep whose input
    /// space is fully consumed (dense mode; see the module docs). Called
    /// at the end of every public entry point, after all pumps settle.
    fn sweep_retirements(&mut self) {
        let mut pumped = std::mem::take(&mut self.pumped);
        if let Sessions::Dense(d) = &mut self.sessions {
            let (n, t) = (self.params.n(), self.params.t());
            pumped.sort_unstable();
            pumped.dedup();
            for &tag in &pumped {
                if let Ok(slot) = d.probe(fx_hash(tag), tag) {
                    if slot & RETIRED_BIT == 0 && d.live[slot as usize].1.fully_consumed(n, t) {
                        d.retire(slot);
                    }
                }
            }
        }
        pumped.clear();
        self.pumped = pumped;
    }

    /// Records one accepted coin-slot broadcast into its session; returns
    /// the touched session tag and dense slot (or `None` for forged
    /// origins and retired sessions).
    fn absorb_coin_delivery(&mut self, d: RbDelivery<CoinSlot, ProcessSet>) -> Option<(u64, u32)> {
        if d.origin.index() as usize > self.params.n() {
            return None; // forged origin: no such process
        }
        let tag = d.tag.coin_tag();
        let (slot, session) = self.sessions.live_mut(tag)?;
        match d.tag {
            CoinSlot::Attach(_) => {
                // |T_j| must be exactly t+1; malformed sets are
                // ignored (their sender is never accepted).
                if d.value.len() == self.params.t() + 1 {
                    session.t_sets.entry(d.origin).or_insert(d.value);
                }
            }
            CoinSlot::Support(_) => {
                session.supports.push((d.origin, d.value));
            }
        }
        Some((tag, slot))
    }

    /// Pulls SVSS events into coin-session state; returns affected tags.
    fn absorb_svss_events(&mut self) -> Vec<u64> {
        let mut tags = Vec::new();
        for ev in self.svss.take_events() {
            match ev {
                SvssEvent::ShareCompleted(sid) => {
                    let (tag, dealer, target) = decode_coin_svss_id(sid);
                    // A Byzantine dealer can share under arbitrary session
                    // ids; only canonical coin ids may influence sessions.
                    if coin_svss_id(tag, dealer, target) != sid {
                        continue;
                    }
                    let Some((_, session)) = self.sessions.live_mut(tag) else {
                        continue; // retired: the session already ran
                    };
                    session.completed_shares.insert(sid);
                    if target == self.me && !session.my_dealers.contains(&sid.dealer()) {
                        session.my_dealers.push(sid.dealer());
                    }
                    tags.push(tag);
                }
                SvssEvent::Reconstructed(sid, value) => {
                    let (tag, dealer, target) = decode_coin_svss_id(sid);
                    if coin_svss_id(tag, dealer, target) != sid {
                        continue;
                    }
                    let Some((_, session)) = self.sessions.live_mut(tag) else {
                        continue; // retired: reconstruction already done
                    };
                    let erased = match value {
                        Reconstructed::Value(v) => Reconstructed::Value(v.as_u64()),
                        Reconstructed::Bottom => Reconstructed::Bottom,
                    };
                    session.outputs.insert(sid, erased);
                    tags.push(tag);
                }
                SvssEvent::Shunned { process, .. } => {
                    self.events.push(CoinEvent::Shunned { process });
                }
                SvssEvent::MwShareCompleted(_) | SvssEvent::MwReconstructed(..) => {}
            }
        }
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Monotone advancement of one coin session. A retired tag is inert.
    ///
    /// Every step block re-resolves the session through the store — in
    /// dense mode that is a direct slab index (resolved once, below), in
    /// map mode a hash probe, exactly the cost this store exists to cut.
    fn pump(&mut self, tag: u64, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        let n = self.params.n();
        let t = self.params.t();
        let quorum = self.params.quorum();
        let Some((slot, _)) = self.sessions.live_mut(tag) else {
            return; // retired: provably inert
        };
        self.pumped.push(tag);
        // Direct-index accessor for the step blocks: no hash probe in
        // dense mode. The slot stays valid for the whole pump (sessions
        // retire only in `sweep_retirements`, after all pumps).
        macro_rules! session {
            () => {
                match &mut self.sessions {
                    Sessions::Map(map) => map.get_mut(&tag).expect("interned above"),
                    Sessions::Dense(d) => &mut d.live[slot as usize].1,
                }
            };
        }

        // Step 2: attach after t+1 dealers completed secrets for me.
        {
            let session = session!();
            if !session.attach_broadcast && session.my_dealers.len() > t {
                session.attach_broadcast = true;
                let t_set: ProcessSet = session.my_dealers.iter().take(t + 1).copied().collect();
                self.mux
                    .broadcast_with(CoinSlot::Attach(tag), t_set, sends, wire_of_coin_mux);
            }
        }

        // Step 3: acceptance.
        {
            let session = session!();
            let mut newly: Vec<Pid> = Vec::new();
            for (&j, t_j) in &session.t_sets {
                if session.accepted.contains(j) {
                    continue;
                }
                let all_done = t_j
                    .iter()
                    .all(|k| session.completed_shares.contains(&coin_svss_id(tag, k, j)));
                if all_done {
                    newly.push(j);
                }
            }
            for j in newly {
                session.accepted.insert(j);
            }
        }

        // Step 4: support broadcast at quorum.
        {
            let session = session!();
            if !session.support_broadcast && session.accepted.len() >= quorum {
                session.support_broadcast = true;
                let snapshot = session.accepted;
                self.mux
                    .broadcast_with(CoinSlot::Support(tag), snapshot, sends, wire_of_coin_mux);
            }
        }

        // Step 5: validate supports; fix B at n−t validated.
        {
            let session = session!();
            let accepted = session.accepted;
            for (l, s_l) in &session.supports {
                if !session.validated.contains(*l) && s_l.is_subset(&accepted) {
                    session.validated.insert(*l);
                }
            }
            if session.b_set.is_none() && session.validated.len() >= quorum {
                let mut b = ProcessSet::new();
                let mut counted = 0usize;
                for (l, s_l) in &session.supports {
                    if session.validated.contains(*l) && counted < quorum {
                        // First occurrence of each validated sender counts.
                        b.extend_from(s_l);
                        counted += 1;
                    }
                }
                session.b_set = Some(b);
            }
        }

        // Step 6: reconstruct secrets of accepted processes (gated).
        {
            let mut to_recon: Vec<SvssId> = Vec::new();
            {
                let session = session!();
                if session.recon_enabled {
                    for j in session.accepted.iter() {
                        if let Some(t_j) = session.t_sets.get(&j) {
                            for k in t_j.iter() {
                                let sid = coin_svss_id(tag, k, j);
                                if session.recon_invoked.insert(sid) {
                                    to_recon.push(sid);
                                }
                            }
                        }
                    }
                }
            }
            for sid in to_recon {
                self.svss.reconstruct(sid, sends);
            }
            // Reconstruction may complete synchronously via self-routing.
            let extra_tags = self.absorb_svss_events();
            for extra in extra_tags {
                if extra != tag {
                    self.pump(extra, sends);
                }
            }
        }

        // Step 7: output once every B-member's value is known.
        {
            let session = session!();
            if session.output.is_none() && session.recon_enabled {
                if let Some(b) = session.b_set {
                    let mut zero_seen = false;
                    let mut all_known = true;
                    'members: for j in b.iter() {
                        let Some(t_j) = session.t_sets.get(&j) else {
                            all_known = false;
                            break;
                        };
                        let mut sum: u128 = 0;
                        for k in t_j.iter() {
                            match session.outputs.get(&coin_svss_id(tag, k, j)) {
                                Some(Reconstructed::Value(v)) => sum += u128::from(*v),
                                Some(Reconstructed::Bottom) => {
                                    // Binding was broken (shunning case):
                                    // treat the value as nonzero.
                                    continue 'members;
                                }
                                None => {
                                    all_known = false;
                                    break 'members;
                                }
                            }
                        }
                        let v_j = (sum % u128::from(F::MODULUS)) % (n as u128);
                        if v_j == 0 {
                            zero_seen = true;
                        }
                    }
                    if all_known {
                        // Output 0 iff some attached value hit zero.
                        let value = !zero_seen;
                        session.output = Some(value);
                        self.events.push(CoinEvent::Flipped { tag, value });
                    }
                }
            }
        }
    }
}
