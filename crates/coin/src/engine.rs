//! The per-process SCC engine.

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sba_broadcast::{MuxMsg, Params, RbDelivery, RbMux};
use sba_field::{Domain, Field};
use sba_net::{FastMap, Pid, ProcessSet, SvssId, Unpacked};
use sba_svss::{Reconstructed, SvssEngine, SvssEvent, SvssMsg};

use crate::messages::{coin_mux_of_parts, wire_of_coin_mux};
use crate::{coin_svss_id, decode_coin_svss_id, CoinMsg, CoinSlot};

/// Events reported by the coin engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoinEvent {
    /// Coin session `tag` produced an output at this process.
    Flipped {
        /// The session.
        tag: u64,
        /// The coin value.
        value: bool,
    },
    /// The underlying DMM started shunning `process` (forwarded from the
    /// SVSS layer; at most `t(n−t)` of these per execution, which bounds
    /// the number of coin sessions that may fail to be common).
    Shunned {
        /// The newly shunned process.
        process: Pid,
    },
}

/// Per-session state.
#[derive(Debug, Default)]
struct CoinSession {
    started: bool,
    /// Dealers whose secret-attached-to-me share completed, arrival order.
    my_dealers: Vec<Pid>,
    attach_broadcast: bool,
    /// Delivered attach sets `T_j`.
    t_sets: FastMap<Pid, ProcessSet>,
    /// Completed SVSS shares of this coin session (any dealer/target).
    completed_shares: BTreeSet<SvssId>,
    /// Accepted ("attached") processes.
    accepted: ProcessSet,
    support_broadcast: bool,
    /// Delivered support sets.
    supports: Vec<(Pid, ProcessSet)>,
    /// Senders of validated supports.
    validated: ProcessSet,
    /// The fixed union of the first `n−t` validated supports.
    b_set: Option<ProcessSet>,
    recon_enabled: bool,
    recon_invoked: BTreeSet<SvssId>,
    /// Reconstructed secrets.
    outputs: FastMap<SvssId, Reconstructed<Gf64Erased>>,
    output: Option<bool>,
}

// The session state must not be generic over F (it lives in a plain map),
// so reconstructed values are erased to their canonical u64 form.
type Gf64Erased = u64;

/// The shunning common coin for one process.
///
/// Drive it with [`CoinEngine::start`] (every nonfaulty process must start
/// every session), [`CoinEngine::enable_reconstruct`] (the agreement layer
/// gates this on its vote lock), and [`CoinEngine::on_message`]; collect
/// [`CoinEvent`]s with [`CoinEngine::take_events`].
pub struct CoinEngine<F: Field> {
    me: Pid,
    params: Params,
    rng: StdRng,
    svss: SvssEngine<F>,
    mux: RbMux<CoinSlot, ProcessSet>,
    sessions: FastMap<u64, CoinSession>,
    events: Vec<CoinEvent>,
    /// Reusable batch-routing buffers for [`CoinEngine::on_batch`]
    /// (capacity survives across deliveries; allocation-free steady
    /// state). Note the nested SVSS engine shares the flat wire type, so
    /// its sends go straight into the caller's list — no rewrap buffer.
    rb_run: Vec<MuxMsg<CoinSlot, ProcessSet>>,
    rb_deliveries: Vec<RbDelivery<CoinSlot, ProcessSet>>,
    svss_batch: Vec<SvssMsg<F>>,
    touched_tags: Vec<u64>,
}

impl<F: Field> CoinEngine<F> {
    /// Creates the coin engine for process `me`. The evaluation domain is
    /// built once here and shared with the whole SVSS stack underneath.
    pub fn new(me: Pid, params: Params, seed: u64) -> Self {
        let domain: Arc<Domain<F>> = Arc::new(Domain::new(params.n()));
        CoinEngine {
            me,
            params,
            rng: StdRng::seed_from_u64(seed ^ 0xC014),
            svss: SvssEngine::with_domain(me, params, seed ^ 0x5C0_FFEE, domain),
            mux: RbMux::new(me, params),
            sessions: FastMap::default(),
            events: Vec::new(),
            rb_run: Vec::new(),
            rb_deliveries: Vec::new(),
            svss_batch: Vec::new(),
            touched_tags: Vec::new(),
        }
    }

    /// This process's id.
    pub fn me(&self) -> Pid {
        self.me
    }

    /// System parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<CoinEvent> {
        std::mem::take(&mut self.events)
    }

    /// The coin output of session `tag`, if flipped.
    pub fn output(&self, tag: u64) -> Option<bool> {
        self.sessions.get(&tag).and_then(|s| s.output)
    }

    /// Read access to the underlying SVSS engine (for experiments).
    pub fn svss(&self) -> &SvssEngine<F> {
        &self.svss
    }

    /// `(live, peak, retired)` RB instance counts summed over this
    /// engine's own mux and the nested SVSS engine's (memory accounting).
    pub fn rb_instance_stats(&self) -> (usize, usize, usize) {
        (
            self.mux.instance_count() + self.svss.rb_live_instances(),
            self.mux.live_peak() + self.svss.rb_live_peak(),
            self.mux.retired_count() + self.svss.rb_retired_instances(),
        )
    }

    /// Disables shunning detection (experiment E8 ablation).
    pub fn disable_detection(&mut self) {
        self.svss.disable_detection();
    }

    /// Starts coin session `tag`: deal one random secret per process.
    ///
    /// Every nonfaulty process must call this for the session to
    /// terminate.
    pub fn start(&mut self, tag: u64, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        let session = self.sessions.entry(tag).or_default();
        if session.started {
            return;
        }
        session.started = true;
        for target in Pid::all(self.params.n()) {
            let secret = F::random(&mut self.rng);
            // The SVSS engine emits the shared flat wire type: its sends
            // go straight into the coin layer's send list.
            self.svss
                .share(coin_svss_id(tag, self.me, target), secret, sends);
        }
        self.pump(tag, sends);
    }

    /// Allows session `tag` to enter its reconstruct phase. The agreement
    /// layer calls this only after locking its vote for the round, so the
    /// adversary cannot learn the coin before honest votes are cast.
    pub fn enable_reconstruct(&mut self, tag: u64, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        let session = self.sessions.entry(tag).or_default();
        if !session.recon_enabled {
            session.recon_enabled = true;
            self.pump(tag, sends);
        }
    }

    /// Feeds one delivered message.
    pub fn on_message(&mut self, from: Pid, msg: CoinMsg<F>, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        if msg.wire_kind().is_coin_rb() {
            let Unpacked::CoinRb {
                slot,
                origin,
                step,
                set,
            } = msg.unpack()
            else {
                unreachable!("coin RB kinds unpack as CoinRb");
            };
            let m = coin_mux_of_parts(slot, origin, step, set);
            let delivery = self.mux.on_message_with(from, m, sends, wire_of_coin_mux);
            if let Some(d) = delivery {
                if let Some(tag) = self.absorb_coin_delivery(d) {
                    self.pump(tag, sends);
                }
            }
        } else {
            // SVSS traffic shares the flat wire type: feed it through and
            // let the nested engine push its sends directly into ours.
            self.svss.on_message(from, msg, sends);
            let tags = self.absorb_svss_events();
            for tag in tags {
                self.pump(tag, sends);
            }
        }
    }

    /// Feeds a whole same-sender delivery batch (drained from `msgs`):
    /// SVSS members go through the nested engine's batch path, coin RB
    /// members through the mux's batch path, and the per-session `pump`
    /// fixpoint runs **once per touched session** instead of once per
    /// message — the dominant post-delivery cost in a full run.
    pub fn on_batch(
        &mut self,
        from: Pid,
        msgs: &mut Vec<CoinMsg<F>>,
        sends: &mut Vec<(Pid, CoinMsg<F>)>,
    ) {
        let mut svss_batch = std::mem::take(&mut self.svss_batch);
        let mut rb_run = std::mem::take(&mut self.rb_run);
        let mut deliveries = std::mem::take(&mut self.rb_deliveries);
        let mut tags = std::mem::take(&mut self.touched_tags);
        for msg in msgs.drain(..) {
            if msg.wire_kind().is_coin_rb() {
                let Unpacked::CoinRb {
                    slot,
                    origin,
                    step,
                    set,
                } = msg.unpack()
                else {
                    unreachable!("coin RB kinds unpack as CoinRb");
                };
                rb_run.push(coin_mux_of_parts(slot, origin, step, set));
            } else {
                svss_batch.push(msg);
            }
        }
        if !svss_batch.is_empty() {
            self.svss.on_batch(from, &mut svss_batch, sends);
        }
        self.mux.on_batch_with(
            from,
            rb_run.drain(..),
            sends,
            wire_of_coin_mux,
            &mut deliveries,
        );
        for d in deliveries.drain(..) {
            if let Some(tag) = self.absorb_coin_delivery(d) {
                tags.push(tag);
            }
        }
        tags.extend(self.absorb_svss_events());
        tags.sort_unstable();
        tags.dedup();
        // `pump` recurses into sessions its own outputs touch, so the
        // scratch must be released before pumping.
        self.svss_batch = svss_batch;
        self.rb_run = rb_run;
        self.rb_deliveries = deliveries;
        for tag in &tags {
            self.pump(*tag, sends);
        }
        tags.clear();
        self.touched_tags = tags;
    }

    /// Records one accepted coin-slot broadcast into its session; returns
    /// the touched session tag (or `None` for forged origins).
    fn absorb_coin_delivery(&mut self, d: RbDelivery<CoinSlot, ProcessSet>) -> Option<u64> {
        if d.origin.index() as usize > self.params.n() {
            return None; // forged origin: no such process
        }
        let tag = d.tag.coin_tag();
        let session = self.sessions.entry(tag).or_default();
        match d.tag {
            CoinSlot::Attach(_) => {
                // |T_j| must be exactly t+1; malformed sets are
                // ignored (their sender is never accepted).
                if d.value.len() == self.params.t() + 1 {
                    session.t_sets.entry(d.origin).or_insert(d.value);
                }
            }
            CoinSlot::Support(_) => {
                session.supports.push((d.origin, d.value));
            }
        }
        Some(tag)
    }

    /// Pulls SVSS events into coin-session state; returns affected tags.
    fn absorb_svss_events(&mut self) -> Vec<u64> {
        let mut tags = Vec::new();
        for ev in self.svss.take_events() {
            match ev {
                SvssEvent::ShareCompleted(sid) => {
                    let (tag, dealer, target) = decode_coin_svss_id(sid);
                    // A Byzantine dealer can share under arbitrary session
                    // ids; only canonical coin ids may influence sessions.
                    if coin_svss_id(tag, dealer, target) != sid {
                        continue;
                    }
                    let session = self.sessions.entry(tag).or_default();
                    session.completed_shares.insert(sid);
                    if target == self.me && !session.my_dealers.contains(&sid.dealer()) {
                        session.my_dealers.push(sid.dealer());
                    }
                    tags.push(tag);
                }
                SvssEvent::Reconstructed(sid, value) => {
                    let (tag, dealer, target) = decode_coin_svss_id(sid);
                    if coin_svss_id(tag, dealer, target) != sid {
                        continue;
                    }
                    let session = self.sessions.entry(tag).or_default();
                    let erased = match value {
                        Reconstructed::Value(v) => Reconstructed::Value(v.as_u64()),
                        Reconstructed::Bottom => Reconstructed::Bottom,
                    };
                    session.outputs.insert(sid, erased);
                    tags.push(tag);
                }
                SvssEvent::Shunned { process, .. } => {
                    self.events.push(CoinEvent::Shunned { process });
                }
                SvssEvent::MwShareCompleted(_) | SvssEvent::MwReconstructed(..) => {}
            }
        }
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Monotone advancement of one coin session.
    fn pump(&mut self, tag: u64, sends: &mut Vec<(Pid, CoinMsg<F>)>) {
        let n = self.params.n();
        let t = self.params.t();
        let quorum = self.params.quorum();
        let me = self.me;

        // Step 2: attach after t+1 dealers completed secrets for me.
        {
            let session = self.sessions.entry(tag).or_default();
            if !session.attach_broadcast && session.my_dealers.len() > t {
                session.attach_broadcast = true;
                let t_set: ProcessSet = session.my_dealers.iter().take(t + 1).copied().collect();
                self.mux
                    .broadcast_with(CoinSlot::Attach(tag), t_set, sends, wire_of_coin_mux);
            }
        }

        // Step 3: acceptance.
        {
            let session = self.sessions.entry(tag).or_default();
            let mut newly: Vec<Pid> = Vec::new();
            for (&j, t_j) in &session.t_sets {
                if session.accepted.contains(j) {
                    continue;
                }
                let all_done = t_j
                    .iter()
                    .all(|k| session.completed_shares.contains(&coin_svss_id(tag, k, j)));
                if all_done {
                    newly.push(j);
                }
            }
            for j in newly {
                session.accepted.insert(j);
            }
        }

        // Step 4: support broadcast at quorum.
        {
            let session = self.sessions.entry(tag).or_default();
            if !session.support_broadcast && session.accepted.len() >= quorum {
                session.support_broadcast = true;
                let snapshot = session.accepted;
                self.mux
                    .broadcast_with(CoinSlot::Support(tag), snapshot, sends, wire_of_coin_mux);
            }
        }

        // Step 5: validate supports; fix B at n−t validated.
        {
            let session = self.sessions.entry(tag).or_default();
            let accepted = session.accepted;
            for (l, s_l) in &session.supports {
                if !session.validated.contains(*l) && s_l.is_subset(&accepted) {
                    session.validated.insert(*l);
                }
            }
            if session.b_set.is_none() && session.validated.len() >= quorum {
                let mut b = ProcessSet::new();
                let mut counted = 0usize;
                for (l, s_l) in &session.supports {
                    if session.validated.contains(*l) && counted < quorum {
                        // First occurrence of each validated sender counts.
                        b.extend_from(s_l);
                        counted += 1;
                    }
                }
                session.b_set = Some(b);
            }
        }

        // Step 6: reconstruct secrets of accepted processes (gated).
        {
            let mut to_recon: Vec<SvssId> = Vec::new();
            {
                let session = self.sessions.entry(tag).or_default();
                if session.recon_enabled {
                    for j in session.accepted.iter() {
                        if let Some(t_j) = session.t_sets.get(&j) {
                            for k in t_j.iter() {
                                let sid = coin_svss_id(tag, k, j);
                                if session.recon_invoked.insert(sid) {
                                    to_recon.push(sid);
                                }
                            }
                        }
                    }
                }
            }
            for sid in to_recon {
                self.svss.reconstruct(sid, sends);
            }
            // Reconstruction may complete synchronously via self-routing.
            let extra_tags = self.absorb_svss_events();
            for extra in extra_tags {
                if extra != tag {
                    self.pump(extra, sends);
                }
            }
        }

        // Step 7: output once every B-member's value is known.
        {
            let session = self.sessions.entry(tag).or_default();
            if session.output.is_none() && session.recon_enabled {
                if let Some(b) = session.b_set {
                    let mut zero_seen = false;
                    let mut all_known = true;
                    'members: for j in b.iter() {
                        let Some(t_j) = session.t_sets.get(&j) else {
                            all_known = false;
                            break;
                        };
                        let mut sum: u128 = 0;
                        for k in t_j.iter() {
                            match session.outputs.get(&coin_svss_id(tag, k, j)) {
                                Some(Reconstructed::Value(v)) => sum += u128::from(*v),
                                Some(Reconstructed::Bottom) => {
                                    // Binding was broken (shunning case):
                                    // treat the value as nonzero.
                                    continue 'members;
                                }
                                None => {
                                    all_known = false;
                                    break 'members;
                                }
                            }
                        }
                        let v_j = (sum % u128::from(F::MODULUS)) % (n as u128);
                        if v_j == 0 {
                            zero_seen = true;
                        }
                    }
                    if all_known {
                        // Output 0 iff some attached value hit zero.
                        let value = !zero_seen;
                        session.output = Some(value);
                        self.events.push(CoinEvent::Flipped { tag, value });
                    }
                }
            }
        }
        let _ = me; // `me` is reserved for future per-process tracing
    }
}
