//! Baseline coins: the perfect oracle and the ε-failing Canetti–Rabin
//! stand-in.
//!
//! Both are *globally consistent by construction* (a hash of the session
//! tag and a shared seed), standing in for idealized primitives the paper
//! compares against:
//!
//! - [`OracleCoin`] with `epsilon_millis = 0`: a perfect common coin — the
//!   lower-bound reference for agreement round counts (experiment E2).
//! - [`OracleCoin`] with `epsilon_millis > 0`: Canetti–Rabin's AVSS-based
//!   coin, whose sessions fail to terminate with probability ε — the
//!   protocol the paper's abstract calls out as *not* almost-surely
//!   terminating. A failed session returns [`Flip::Hangs`], modelling the
//!   non-terminating execution.

/// Outcome of consulting the oracle for one session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flip {
    /// All processes see this common value.
    Common(bool),
    /// This session never terminates (the ε-failure of Canetti–Rabin).
    Hangs,
}

/// A deterministic, globally consistent stand-in coin.
///
/// # Examples
///
/// ```
/// use sba_coin::oracle::{Flip, OracleCoin};
///
/// let perfect = OracleCoin::new(42, 0);
/// assert!(matches!(perfect.flip(7), Flip::Common(_)));
/// assert_eq!(perfect.flip(7), perfect.flip(7)); // deterministic
///
/// let epsilon = OracleCoin::new(42, 500); // fails half the sessions
/// let hangs = (0..1000).filter(|&s| epsilon.flip(s) == Flip::Hangs).count();
/// assert!(hangs > 350 && hangs < 650);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct OracleCoin {
    seed: u64,
    epsilon_millis: u32,
}

impl OracleCoin {
    /// Creates an oracle; `epsilon_millis` is the per-session hang
    /// probability in thousandths (0 = perfect coin).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon_millis > 1000`.
    pub fn new(seed: u64, epsilon_millis: u32) -> Self {
        assert!(epsilon_millis <= 1000, "probability above 1");
        OracleCoin {
            seed,
            epsilon_millis,
        }
    }

    fn mix(self, tag: u64) -> u64 {
        // SplitMix64 over (seed, tag): deterministic, well distributed.
        let mut z = self.seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The (global) outcome of session `tag`.
    pub fn flip(self, tag: u64) -> Flip {
        let h = self.mix(tag);
        if (h % 1000) < u64::from(self.epsilon_millis) {
            Flip::Hangs
        } else {
            Flip::Common(h & (1 << 17) != 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_coin_never_hangs_and_is_fair() {
        let coin = OracleCoin::new(7, 0);
        let mut ones = 0;
        for tag in 0..2000u64 {
            match coin.flip(tag) {
                Flip::Common(true) => ones += 1,
                Flip::Common(false) => {}
                Flip::Hangs => panic!("perfect coin hung"),
            }
        }
        assert!((800..1200).contains(&ones), "biased coin: {ones}/2000");
    }

    #[test]
    fn epsilon_controls_hang_rate() {
        for (eps, lo, hi) in [(100u32, 120usize, 280usize), (1000, 2000, 2000)] {
            let coin = OracleCoin::new(3, eps);
            let hangs = (0..2000u64)
                .filter(|&t| coin.flip(t) == Flip::Hangs)
                .count();
            assert!((lo..=hi).contains(&hangs), "eps={eps}: {hangs}");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn epsilon_bounds_checked() {
        let _ = OracleCoin::new(0, 1001);
    }

    #[test]
    fn different_seeds_differ() {
        let a = OracleCoin::new(1, 0);
        let b = OracleCoin::new(2, 0);
        assert!((0..64).any(|t| a.flip(t) != b.flip(t)));
    }
}
