//! Wire messages and session-id conventions for the common coin.
//!
//! Since PR 4 the coin layer shares the **flat packed wire format** with
//! the SVSS stack ([`sba_net::WireMsg`]): a coin-layer message is either
//! nested SVSS traffic or a coin-slot reliable broadcast, and both live
//! in the same 32-byte `{key, body}` struct under one flat
//! [`sba_net::WireKind`] discriminant — no `CoinMsg::Svss(SvssMsg::…)`
//! wrapper nesting, no per-layer heap node, and wrapping SVSS traffic
//! into the coin layer is the identity function.

use sba_broadcast::{MuxMsg, RbMsg, WrbMsg};
use sba_field::Field;
use sba_net::{Pid, ProcessSet, RbStep, SvssId};

pub use sba_net::CoinSlot;

/// The coin layer's wire message: the shared flat format (nested SVSS
/// traffic plus the coin's own attach/support reliable broadcasts).
pub type CoinMsg<F> = sba_svss::SvssMsg<F>;

/// Builds the SVSS session id of "dealer `dealer`'s secret attached to
/// `target` in coin session `coin_tag`".
///
/// # Panics
///
/// Panics if `coin_tag ≥ 2^56` (the low 8 bits encode the target, so the
/// tag must fit in the remaining 56).
pub fn coin_svss_id(coin_tag: u64, dealer: Pid, target: Pid) -> SvssId {
    assert!(coin_tag < (1 << 56), "coin tag too large");
    assert!(target.index() < 256, "coin supports up to 255 processes");
    SvssId::new((coin_tag << 8) | u64::from(target.index()), dealer)
}

/// Inverse of [`coin_svss_id`]: `(coin_tag, dealer, target)`.
pub fn decode_coin_svss_id(id: SvssId) -> (u64, Pid, Pid) {
    let target = (id.tag() & 0xff) as u32;
    (id.tag() >> 8, id.dealer(), Pid::new(target.max(1)))
}

/// Flattens a routed coin-mux message into the packed wire form (the RB
/// mux's `wrap` hook for the coin layer).
pub fn wire_of_coin_mux<F: Field>(m: MuxMsg<CoinSlot, ProcessSet>) -> CoinMsg<F> {
    let (step, set) = match m.inner {
        RbMsg::Wrb(WrbMsg::Init(s)) => (RbStep::Init, s),
        RbMsg::Wrb(WrbMsg::Echo(s)) => (RbStep::Echo, s),
        RbMsg::Ready(s) => (RbStep::Ready, s),
    };
    CoinMsg::coin_rb(m.tag, m.origin, step, set)
}

/// Rebuilds the routed coin-mux message from unpacked RB parts (the
/// inverse of [`wire_of_coin_mux`], used on the delivery path).
pub fn coin_mux_of_parts(
    slot: CoinSlot,
    origin: Pid,
    step: RbStep,
    set: ProcessSet,
) -> MuxMsg<CoinSlot, ProcessSet> {
    let inner = match step {
        RbStep::Init => RbMsg::Wrb(WrbMsg::Init(set)),
        RbStep::Echo => RbMsg::Wrb(WrbMsg::Echo(set)),
        RbStep::Ready => RbMsg::Ready(set),
    };
    MuxMsg {
        tag: slot,
        origin,
        inner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sba_field::Gf61;
    use sba_net::{Kinded, Reader, Unpacked, Wire};

    #[test]
    fn svss_id_round_trip() {
        let id = coin_svss_id(77, Pid::new(3), Pid::new(9));
        let (tag, dealer, target) = decode_coin_svss_id(id);
        assert_eq!((tag, dealer, target), (77, Pid::new(3), Pid::new(9)));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_tag_rejected() {
        let _ = coin_svss_id(1 << 56, Pid::new(1), Pid::new(1));
    }

    #[test]
    fn wire_round_trips() {
        let msg: CoinMsg<Gf61> = wire_of_coin_mux(MuxMsg {
            tag: CoinSlot::Support(9),
            origin: Pid::new(2),
            inner: RbMsg::Ready(Pid::all(3).collect()),
        });
        let bytes = msg.encoded();
        assert_eq!(msg.encoded_len(), bytes.len());
        assert_eq!(CoinMsg::decode(&mut Reader::new(&bytes)).unwrap(), msg);
        assert_eq!(msg.kind(), "coin/support");
        let Unpacked::CoinRb {
            slot,
            origin,
            step,
            set,
        } = msg.unpack()
        else {
            panic!("coin RB unpacks as CoinRb");
        };
        assert_eq!(
            coin_mux_of_parts(slot, origin, step, set),
            MuxMsg {
                tag: CoinSlot::Support(9),
                origin: Pid::new(2),
                inner: RbMsg::Ready(Pid::all(3).collect()),
            }
        );
    }

    #[test]
    fn coin_slot_accessors() {
        assert_eq!(CoinSlot::Attach(5).coin_tag(), 5);
        assert_eq!(CoinSlot::Support(7).coin_tag(), 7);
    }
}
