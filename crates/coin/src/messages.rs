//! Wire messages and session-id conventions for the common coin.

use sba_broadcast::MuxMsg;
use sba_field::Field;
use sba_net::{CodecError, Kinded, Pid, ProcessSet, Reader, SvssId, Wire};
use sba_svss::SvssMsg;

/// Builds the SVSS session id of "dealer `dealer`'s secret attached to
/// `target` in coin session `coin_tag`".
///
/// # Panics
///
/// Panics if `coin_tag ≥ 2^56` (the low 8 bits encode the target, so the
/// tag must fit in the remaining 56).
pub fn coin_svss_id(coin_tag: u64, dealer: Pid, target: Pid) -> SvssId {
    assert!(coin_tag < (1 << 56), "coin tag too large");
    assert!(target.index() < 256, "coin supports up to 255 processes");
    SvssId::new((coin_tag << 8) | u64::from(target.index()), dealer)
}

/// Inverse of [`coin_svss_id`]: `(coin_tag, dealer, target)`.
pub fn decode_coin_svss_id(id: SvssId) -> (u64, Pid, Pid) {
    let target = (id.tag() & 0xff) as u32;
    (id.tag() >> 8, id.dealer(), Pid::new(target.max(1)))
}

/// RB slots of the coin layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoinSlot {
    /// "Attach these `t+1` dealers' secrets to me" (origin: the attached
    /// process).
    Attach(u64),
    /// "I have accepted this set of attached processes" (origin: the
    /// supporter).
    Support(u64),
}

impl CoinSlot {
    /// The coin session this slot belongs to.
    pub fn coin_tag(self) -> u64 {
        match self {
            CoinSlot::Attach(t) | CoinSlot::Support(t) => t,
        }
    }
}

impl Wire for CoinSlot {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CoinSlot::Attach(t) => {
                buf.push(0);
                t.encode(buf);
            }
            CoinSlot::Support(t) => {
                buf.push(1);
                t.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.byte()? {
            0 => Ok(CoinSlot::Attach(u64::decode(r)?)),
            1 => Ok(CoinSlot::Support(u64::decode(r)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        9
    }
}

/// The coin layer's wire message: nested SVSS traffic plus the coin's own
/// reliable broadcasts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoinMsg<F> {
    /// SVSS-stack traffic (shares, reconstructions, their broadcasts).
    Svss(SvssMsg<F>),
    /// Coin-level RB traffic (attach/support sets).
    Rb(MuxMsg<CoinSlot, ProcessSet>),
}

impl<F: Field> Wire for CoinMsg<F> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CoinMsg::Svss(m) => {
                buf.push(0);
                m.encode(buf);
            }
            CoinMsg::Rb(m) => {
                buf.push(1);
                m.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.byte()? {
            0 => Ok(CoinMsg::Svss(SvssMsg::decode(r)?)),
            1 => Ok(CoinMsg::Rb(MuxMsg::decode(r)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            CoinMsg::Svss(m) => 1 + m.encoded_len(),
            CoinMsg::Rb(m) => 1 + m.encoded_len(),
        }
    }
}

impl<F> Kinded for CoinMsg<F> {
    fn kind(&self) -> &'static str {
        match self {
            CoinMsg::Svss(m) => m.kind(),
            CoinMsg::Rb(m) => match m.tag {
                CoinSlot::Attach(_) => "coin/attach",
                CoinSlot::Support(_) => "coin/support",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sba_broadcast::RbMsg;
    use sba_field::Gf61;

    #[test]
    fn svss_id_round_trip() {
        let id = coin_svss_id(77, Pid::new(3), Pid::new(9));
        let (tag, dealer, target) = decode_coin_svss_id(id);
        assert_eq!((tag, dealer, target), (77, Pid::new(3), Pid::new(9)));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_tag_rejected() {
        let _ = coin_svss_id(1 << 56, Pid::new(1), Pid::new(1));
    }

    #[test]
    fn wire_round_trips() {
        let slot = CoinSlot::Attach(5);
        let bytes = slot.encoded();
        assert_eq!(slot.encoded_len(), bytes.len());
        assert_eq!(CoinSlot::decode(&mut Reader::new(&bytes)).unwrap(), slot);

        let msg: CoinMsg<Gf61> = CoinMsg::Rb(MuxMsg {
            tag: CoinSlot::Support(9),
            origin: Pid::new(2),
            inner: RbMsg::Ready(Pid::all(3).collect()),
        });
        let bytes = msg.encoded();
        assert_eq!(msg.encoded_len(), bytes.len());
        assert_eq!(CoinMsg::decode(&mut Reader::new(&bytes)).unwrap(), msg);
        assert_eq!(msg.kind(), "coin/support");
    }
}
