//! Property suite for the field layer (integration-level, both fields):
//! interpolation/evaluation round-trips for `Poly` and row/column
//! projection consistency for `BiPoly`, over `Gf61` (production) and
//! `Gf101` (tiny, near-exhaustive index space).
//!
//! Case counts are bounded explicitly so the tier-1 run stays fast; crank
//! `cases` locally when hunting for counterexamples.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sba_field::{BiPoly, Domain, Field, Gf101, Gf61, Poly};

/// Shared body: a random degree-`d` polynomial is recovered exactly from
/// `d+1` evaluations at distinct indices, and its secret from the recovery.
fn poly_round_trips<F: Field>(seed: u64, degree: usize, secret: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let secret = F::from_u64(secret);
    let p = Poly::random_with_constant(secret, degree, &mut rng);
    let pts: Vec<(F, F)> = (1..=(degree as u64 + 1))
        .map(|i| (F::from_u64(i), p.eval_at_index(i)))
        .collect();
    let q = Poly::interpolate(&pts).map_err(|e| e.to_string())?;
    if q != p {
        return Err(format!(
            "interpolation changed the polynomial: {q:?} != {p:?}"
        ));
    }
    if q.eval(F::ZERO) != secret {
        return Err("recovered polynomial lost the secret".into());
    }
    // Checked interpolation agrees on honest points.
    if Poly::interpolate_checked(&pts, degree).as_ref() != Some(&p) {
        return Err("interpolate_checked rejected honest points".into());
    }
    Ok(())
}

/// Shared body: every row/column projection of a random bivariate
/// polynomial is consistent with direct evaluation, rows and columns agree
/// pairwise (`g_l(k) = h_k(l) = f(k, l)`), and `t+1` rows reconstruct `f`.
fn bipoly_projections_consistent<F: Field>(seed: u64, t: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let secret = F::random(&mut rng);
    let f = BiPoly::random_with_secret(secret, t, &mut rng);
    if f.secret() != secret || f.eval_indices(0, 0) != secret {
        return Err("secret is not f(0,0)".into());
    }
    for k in 1..=(2 * t as u64 + 2) {
        let row = f.row(k);
        let col = f.col(k);
        if row.degree().unwrap_or(0) > t || col.degree().unwrap_or(0) > t {
            return Err(format!("projection degree exceeds t={t} at index {k}"));
        }
        for l in 1..=(2 * t as u64 + 2) {
            let direct = f.eval_indices(k, l);
            if row.eval_at_index(l) != direct {
                return Err(format!("row({k}) at {l} disagrees with f({k},{l})"));
            }
            if f.col(l).eval_at_index(k) != direct {
                return Err(format!("col({l}) at {k} disagrees with f({k},{l})"));
            }
        }
    }
    let rows: Vec<(u64, Poly<F>)> = (1..=(t as u64 + 1)).map(|i| (i, f.row(i))).collect();
    match BiPoly::interpolate_rows(t, &rows) {
        Some(g) if g == f => Ok(()),
        Some(_) => Err("interpolate_rows produced a different polynomial".into()),
        None => Err("interpolate_rows rejected t+1 honest rows".into()),
    }
}

proptest! {
    // Every case runs O(t^2) interpolations; keep the counts bounded so
    // the whole file stays well under a minute in debug builds.
    #![proptest_config(ProptestConfig { cases: 48, max_shrink_iters: 0 })]

    /// Degree-d interpolation round-trip over the production field.
    #[test]
    fn poly_round_trip_gf61(seed in any::<u64>(), degree in 0usize..6, secret in any::<u64>()) {
        if let Err(e) = poly_round_trips::<Gf61>(seed, degree, secret) {
            prop_assert!(false, "Gf61: {}", e);
        }
    }

    /// Degree-d interpolation round-trip over the tiny field (where index
    /// collisions modulo 101 would be loudest if index handling broke).
    #[test]
    fn poly_round_trip_gf101(seed in any::<u64>(), degree in 0usize..6, secret in 0u64..101) {
        if let Err(e) = poly_round_trips::<Gf101>(seed, degree, secret) {
            prop_assert!(false, "Gf101: {}", e);
        }
    }

    /// Evaluation at an arbitrary point matches explicit coefficient
    /// summation (Horner correctness witness).
    #[test]
    fn horner_matches_naive_gf61(
        coeffs in proptest::collection::vec(any::<u64>(), 0..7),
        x in any::<u64>(),
    ) {
        let p = Poly::from_coeffs(coeffs.iter().copied().map(Gf61::from_u64).collect());
        let x = Gf61::from_u64(x);
        let mut naive = Gf61::ZERO;
        let mut xp = Gf61::ONE;
        for &c in coeffs.iter() {
            naive += Gf61::from_u64(c) * xp;
            xp *= x;
        }
        prop_assert_eq!(p.eval(x), naive);
    }

    /// Bivariate projection consistency over the production field.
    #[test]
    fn bipoly_projections_gf61(seed in any::<u64>(), t in 0usize..5) {
        if let Err(e) = bipoly_projections_consistent::<Gf61>(seed, t) {
            prop_assert!(false, "Gf61: {}", e);
        }
    }

    /// Bivariate projection consistency over the tiny field.
    #[test]
    fn bipoly_projections_gf101(seed in any::<u64>(), t in 0usize..4) {
        if let Err(e) = bipoly_projections_consistent::<Gf101>(seed, t) {
            prop_assert!(false, "Gf101: {}", e);
        }
    }

    /// Tampering one share of an otherwise-honest point set must be caught
    /// by checked interpolation whenever redundancy exists (> t+1 points).
    #[test]
    fn checked_interpolation_catches_one_lie(
        seed in any::<u64>(),
        degree in 0usize..4,
        victim in 0usize..6,
        delta in 1u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Poly::random_with_constant(Gf61::from_u64(99), degree, &mut rng);
        let extra = 2usize; // redundancy beyond t+1
        let mut pts: Vec<(Gf61, Gf61)> = (1..=(degree as u64 + 1 + extra as u64))
            .map(|i| (Gf61::from_u64(i), p.eval_at_index(i)))
            .collect();
        let victim = victim % pts.len();
        pts[victim].1 += Gf61::from_u64(delta);
        prop_assert!(
            Poly::interpolate_checked(&pts, degree).is_none(),
            "a corrupted share slipped through checked interpolation"
        );
    }

    /// Wide-domain interpolation (PR 7 cap lift): over a 128-point domain
    /// — past the old 64-point tables — a degree-d polynomial is
    /// recovered exactly from d+1 evaluations at indices drawn anywhere
    /// in 1..=128, its secret matches `interpolate_at_zero`, and the
    /// checked form accepts the honest redundancy.
    #[test]
    fn domain_interpolation_at_n128(
        seed in any::<u64>(),
        degree in 0usize..6,
        offset in 0u64..100,
    ) {
        let domain: Domain<Gf61> = Domain::new(128);
        let mut rng = StdRng::seed_from_u64(seed);
        let secret = Gf61::random(&mut rng);
        let p = Poly::random_with_constant(secret, degree, &mut rng);
        // Spread the sample indices across both 64-index words: stride
        // from a high offset and wrap within 1..=128.
        let idx = |k: u64| (offset + k * 17) % 128 + 1;
        let pts: Vec<(u64, Gf61)> = (0..=degree as u64)
            .map(|k| (idx(k), p.eval_at_index(idx(k))))
            .collect();
        // Strided indices are distinct here (17 is coprime to 128 and
        // degree < 8 keeps the stride from wrapping onto itself).
        let q = domain.interpolate(&pts).expect("interpolation succeeds");
        prop_assert_eq!(&q, &p, "128-point domain changed the polynomial");
        prop_assert_eq!(
            domain.interpolate_at_zero(&pts).expect("at-zero succeeds"),
            secret
        );
        let redundant: Vec<(u64, Gf61)> = (1..=(degree as u64 + 3))
            .map(|i| (i + 64, p.eval_at_index(i + 64)))
            .collect();
        prop_assert_eq!(
            domain.interpolate_checked_at_zero(&redundant, degree),
            Some(secret),
            "checked interpolation rejected honest high-index shares"
        );
    }
}
