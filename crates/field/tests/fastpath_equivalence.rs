//! Property tests pinning the fast interpolation paths to the naive
//! Lagrange reference: the domain-cached barycentric forms, the batched
//! coefficient recovery, and the allocation-free batch-eval APIs must
//! agree **exactly** with the straightforward implementations over both
//! `Gf61` (production) and `Gf101` (tiny, collision-rich), including the
//! duplicate-x and degree-overflow error paths.

use proptest::prelude::*;
use rand::SeedableRng;
use sba_field::{batch_invert, Domain, Field, Gf101, Gf61, InterpolateError, Poly};

/// The textbook per-basis Lagrange expansion, kept here as the reference
/// implementation (this is what `Poly::interpolate` did before the
/// synthetic-division rewrite).
fn naive_interpolate<F: Field>(points: &[(F, F)]) -> Poly<F> {
    let mut result = vec![F::ZERO; points.len()];
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut basis = vec![F::ONE];
        let mut denom = F::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            denom = denom * (xi - xj);
            basis.push(F::ZERO);
            for k in (1..basis.len()).rev() {
                let prev = basis[k - 1];
                basis[k] = prev - xj * basis[k];
            }
            basis[0] = -xj * basis[0];
        }
        let scale = yi * denom.inv();
        for (k, &b) in basis.iter().enumerate() {
            result[k] = result[k] + scale * b;
        }
    }
    Poly::from_coeffs(result)
}

/// Distinct 1-based indices drawn from `1..=max_index`.
fn indices(max_index: u64, count: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::sample::subsequence((1..=max_index).collect::<Vec<_>>(), count)
}

fn check_field<F: Field>(
    domain_n: usize,
    seed: u64,
    idx: &[u64],
    degree: usize,
) -> Result<(), String> {
    let domain: Domain<F> = Domain::new(domain_n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let secret = F::random(&mut rng);
    let poly = Poly::random_with_constant(secret, degree, &mut rng);
    let idx_pts: Vec<(u64, F)> = idx.iter().map(|&i| (i, poly.eval_at_index(i))).collect();
    let pts: Vec<(F, F)> = idx_pts.iter().map(|&(i, y)| (F::from_u64(i), y)).collect();

    // Coefficient recovery: naive == rewritten Poly::interpolate == Domain.
    let reference = naive_interpolate(&pts);
    let fast = Poly::interpolate(&pts).map_err(|e| e.to_string())?;
    if fast != reference {
        return Err("Poly::interpolate disagrees with naive Lagrange".into());
    }
    let via_domain = domain.interpolate(&idx_pts).map_err(|e| e.to_string())?;
    if via_domain != reference {
        return Err("Domain::interpolate disagrees with naive Lagrange".into());
    }

    // Secret recovery and point evaluation without coefficients.
    if domain.interpolate_at_zero(&idx_pts).expect("distinct") != reference.eval(F::ZERO) {
        return Err("interpolate_at_zero disagrees with eval(0)".into());
    }
    for target in 1..=domain_n as u64 {
        let bary = domain.eval_at_index(&idx_pts, target).expect("in domain");
        if bary != reference.eval_at_index(target) {
            return Err(format!("eval_at_index({target}) disagrees"));
        }
    }

    // Batch eval agrees with pointwise Horner.
    let mut many = Vec::new();
    poly.eval_many(domain.points(), &mut many);
    for (k, &v) in many.iter().enumerate() {
        if v != poly.eval_at_index(k as u64 + 1) {
            return Err(format!("eval_many disagrees at index {}", k + 1));
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn gf61_fast_paths_agree(
        seed in any::<u64>(),
        degree in 0usize..6,
        extra in 0usize..3,
    ) {
        let count = degree + 1 + extra; // up to 9 points from 1..=12
        let idx: Vec<u64> = (1..=count as u64).collect();
        let r = check_field::<Gf61>(12, seed, &idx, degree);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn gf61_fast_paths_agree_on_scattered_indices(
        seed in any::<u64>(),
        idx in indices(16, 5),
    ) {
        let r = check_field::<Gf61>(16, seed, &idx, 4);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn gf101_fast_paths_agree(
        seed in any::<u64>(),
        idx in indices(10, 4),
    ) {
        let r = check_field::<Gf101>(10, seed, &idx, 3);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn checked_paths_agree_with_naive_membership(
        seed in any::<u64>(),
        degree in 0usize..4,
        corrupt in proptest::option::of(0usize..6),
    ) {
        let domain: Domain<Gf61> = Domain::new(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let poly = Poly::random_with_constant(Gf61::random(&mut rng), degree, &mut rng);
        let mut idx_pts: Vec<(u64, Gf61)> =
            (1..=6u64).map(|i| (i, poly.eval_at_index(i))).collect();
        if let Some(c) = corrupt {
            idx_pts[c].1 += Gf61::ONE;
        }
        let pts: Vec<(Gf61, Gf61)> = idx_pts
            .iter()
            .map(|&(i, y)| (Gf61::from_u64(i), y))
            .collect();
        let naive = Poly::interpolate_checked(&pts, degree);
        let fast_zero = domain.interpolate_checked_at_zero(&idx_pts, degree);
        let fast_poly = domain.interpolate_checked(&idx_pts, degree);
        prop_assert_eq!(naive.as_ref().map(|p| p.eval(Gf61::ZERO)), fast_zero);
        prop_assert_eq!(naive, fast_poly);
    }

    #[test]
    fn batch_invert_agrees_with_fermat(
        vals in proptest::collection::vec(1u64..sba_field::Gf61::MODULUS, 0..12),
    ) {
        let mut xs: Vec<Gf61> = vals.iter().map(|&v| Gf61::from_u64(v)).collect();
        let expect: Vec<Gf61> = xs.iter().map(|x| x.inv()).collect();
        batch_invert(&mut xs);
        prop_assert_eq!(xs, expect);
    }
}

// ---------------------------------------------------------------------
// Error paths: duplicate x's, out-of-domain indices, degree overflow.
// ---------------------------------------------------------------------

#[test]
fn duplicate_x_rejected_everywhere() {
    let domain: Domain<Gf61> = Domain::new(6);
    let y = Gf61::from_u64(5);
    let dup_idx = [(2u64, y), (3, y), (2, y)];
    let dup_pts: Vec<(Gf61, Gf61)> = dup_idx
        .iter()
        .map(|&(i, v)| (Gf61::from_u64(i), v))
        .collect();
    assert_eq!(
        Poly::interpolate(&dup_pts).unwrap_err(),
        InterpolateError::DuplicateX
    );
    assert_eq!(
        domain.interpolate(&dup_idx).unwrap_err(),
        InterpolateError::DuplicateX
    );
    assert_eq!(
        domain.interpolate_at_zero(&dup_idx).unwrap_err(),
        InterpolateError::DuplicateX
    );
    assert_eq!(
        domain.eval_at_index(&dup_idx, 1).unwrap_err(),
        InterpolateError::DuplicateX
    );
    assert!(domain.interpolate_checked(&dup_idx, 2).is_none());
    assert!(domain.interpolate_checked_at_zero(&dup_idx, 2).is_none());
    assert!(Poly::interpolate_checked(&dup_pts, 2).is_none());
}

#[test]
fn empty_and_out_of_domain_rejected() {
    let domain: Domain<Gf101> = Domain::new(4);
    let y = Gf101::ONE;
    assert_eq!(
        domain.interpolate(&[]).unwrap_err(),
        InterpolateError::Empty
    );
    assert_eq!(
        Poly::<Gf101>::interpolate(&[]).unwrap_err(),
        InterpolateError::Empty
    );
    for bad in [0u64, 5, 99] {
        assert_eq!(
            domain.interpolate(&[(bad, y)]).unwrap_err(),
            InterpolateError::OutOfDomain,
            "index {bad}"
        );
    }
    assert_eq!(
        domain.eval_at_index(&[(1, y)], 5).unwrap_err(),
        InterpolateError::OutOfDomain
    );
}

/// Degree overflow: points from a degree-(d+1) polynomial must be rejected
/// by every checked path with `max_degree = d`, exactly like the naive one.
#[test]
fn degree_overflow_rejected_consistently() {
    let domain: Domain<Gf61> = Domain::new(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for d in 0usize..4 {
        let poly = Poly::random_with_constant(Gf61::from_u64(3), d + 1, &mut rng);
        // A degree-(d+1) polynomial with a nonzero top coefficient.
        let idx_pts: Vec<(u64, Gf61)> = (1..=(d as u64 + 3))
            .map(|i| (i, poly.eval_at_index(i)))
            .collect();
        let pts: Vec<(Gf61, Gf61)> = idx_pts
            .iter()
            .map(|&(i, y)| (Gf61::from_u64(i), y))
            .collect();
        if poly.degree() != Some(d + 1) {
            continue; // random top coefficient happened to be zero
        }
        assert!(Poly::interpolate_checked(&pts, d).is_none(), "naive d={d}");
        assert!(
            domain.interpolate_checked(&idx_pts, d).is_none(),
            "domain d={d}"
        );
        assert!(
            domain.interpolate_checked_at_zero(&idx_pts, d).is_none(),
            "domain-at-zero d={d}"
        );
        // With the true degree allowed, all accept and agree.
        assert_eq!(
            domain.interpolate_checked(&idx_pts, d + 1),
            Poly::interpolate_checked(&pts, d + 1)
        );
    }
}
