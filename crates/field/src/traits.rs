//! The [`Field`] trait: the minimal prime-field interface the protocols use.

use std::fmt::{Debug, Display};
use std::hash::Hash;
use std::ops::{Add, Div, Mul, Neg, Sub};

use rand::Rng;

/// A prime field element.
///
/// The protocols only require field arithmetic, uniform sampling, and a
/// canonical mapping to/from `u64` (for wire encoding and for the common
/// coin's reduction of field elements to `[0, n)`).
///
/// Implementations must be value types (`Copy`) with total equality; all
/// operations are infallible except division by zero, which panics.
///
/// # Examples
///
/// ```
/// use sba_field::{Field, Gf101};
///
/// let a = Gf101::from_u64(40);
/// let b = Gf101::from_u64(62);
/// assert_eq!(a + b, Gf101::from_u64(1)); // 102 mod 101
/// assert_eq!(a * a.inv(), Gf101::ONE);
/// ```
pub trait Field:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The field modulus, as a `u64`. All canonical representatives are in
    /// `[0, MODULUS)`.
    const MODULUS: u64;

    /// Constructs the element congruent to `v` modulo [`Self::MODULUS`].
    fn from_u64(v: u64) -> Self;

    /// Returns the canonical representative in `[0, MODULUS)`.
    fn as_u64(self) -> u64;

    /// Samples a uniformly random field element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    fn inv(self) -> Self;

    /// Raises `self` to the power `e` by square-and-multiply.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Whether this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

/// Implements the standard operator traits and `Display` for a field type
/// given inherent `add_impl`/`sub_impl`/`mul_impl`/`neg_impl` methods.
macro_rules! impl_field_ops {
    ($ty:ident) => {
        impl std::ops::Add for $ty {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                self.add_impl(rhs)
            }
        }
        impl std::ops::Sub for $ty {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                self.sub_impl(rhs)
            }
        }
        impl std::ops::Mul for $ty {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                self.mul_impl(rhs)
            }
        }
        impl std::ops::Div for $ty {
            type Output = Self;
            /// # Panics
            /// Panics if `rhs` is zero.
            fn div(self, rhs: Self) -> Self {
                self.mul_impl(crate::Field::inv(rhs))
            }
        }
        impl std::ops::Neg for $ty {
            type Output = Self;
            fn neg(self) -> Self {
                self.neg_impl()
            }
        }
        impl std::ops::AddAssign for $ty {
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }
        impl std::ops::SubAssign for $ty {
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
        impl std::ops::MulAssign for $ty {
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }
        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", crate::Field::as_u64(*self))
            }
        }
        impl std::iter::Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(<$ty as crate::Field>::ZERO, |a, b| a + b)
            }
        }
    };
}

pub(crate) use impl_field_ops;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf101, Gf61};

    fn pow_matches_naive<F: Field>() {
        let x = F::from_u64(7);
        let mut acc = F::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc, "pow mismatch at e={e}");
            acc = acc * x;
        }
    }

    #[test]
    fn pow_gf61() {
        pow_matches_naive::<Gf61>();
    }

    #[test]
    fn pow_gf101() {
        pow_matches_naive::<Gf101>();
    }

    #[test]
    fn zero_one_identities() {
        fn check<F: Field>() {
            assert!(F::ZERO.is_zero());
            assert!(!F::ONE.is_zero());
            assert_eq!(F::ONE.pow(0), F::ONE);
            assert_eq!(F::ZERO.pow(0), F::ONE); // convention: 0^0 = 1
            assert_eq!(F::ZERO.pow(5), F::ZERO);
        }
        check::<Gf61>();
        check::<Gf101>();
    }
}
