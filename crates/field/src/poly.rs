//! Univariate polynomials over a [`Field`], with Lagrange interpolation.
//!
//! The SVSS protocols manipulate degree-`t` polynomials in three ways:
//! sampling with a fixed constant term (the secret), evaluating at process
//! indices, and interpolating from `t+1` points. Reconstruction also needs
//! *checked* interpolation: "is there a degree-`t` polynomial through all of
//! these `≥ t+1` points?" (MW-SVSS `R′` step 4, SVSS `R` steps 2–3).

use std::fmt;

use rand::Rng;

use crate::Field;

/// A univariate polynomial, stored as coefficients, lowest degree first.
///
/// The representation is canonical: the highest coefficient is nonzero
/// (the zero polynomial stores an empty coefficient vector).
///
/// # Examples
///
/// ```
/// use sba_field::{Field, Gf101, Poly};
///
/// // 3 + 2x over GF(101)
/// let p = Poly::from_coeffs(vec![Gf101::from_u64(3), Gf101::from_u64(2)]);
/// assert_eq!(p.eval(Gf101::from_u64(10)), Gf101::from_u64(23));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Poly<F: Field> {
    coeffs: Vec<F>,
}

/// Error returned by [`Poly::interpolate`] (and the domain-cached variants
/// in [`crate::Domain`]) when input points are unusable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpolateError {
    /// Two points share the same x-coordinate.
    DuplicateX,
    /// The point list is empty.
    Empty,
    /// A point index lies outside the precomputed domain `1..=n`.
    OutOfDomain,
}

impl fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpolateError::DuplicateX => write!(f, "duplicate x-coordinate"),
            InterpolateError::Empty => write!(f, "no points to interpolate"),
            InterpolateError::OutOfDomain => write!(f, "point index outside the domain"),
        }
    }
}

/// Inverts every element of `xs` in place with Montgomery's batch trick:
/// one field inversion plus `3(k − 1)` multiplications.
///
/// # Panics
///
/// Panics if any element is zero.
pub fn batch_invert<F: Field>(xs: &mut [F]) {
    if xs.is_empty() {
        return;
    }
    // prefix[i] = x_0 · … · x_{i-1}; invert the total once, then peel.
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = F::ONE;
    for &x in xs.iter() {
        prefix.push(acc);
        acc = acc * x;
    }
    let mut inv = acc.inv();
    for i in (0..xs.len()).rev() {
        let orig = xs[i];
        xs[i] = inv * prefix[i];
        inv = inv * orig;
    }
}

impl std::error::Error for InterpolateError {}

impl<F: Field> fmt::Debug for Poly<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly{:?}", self.coeffs)
    }
}

impl<F: Field> Poly<F> {
    /// Constructs a polynomial from coefficients (lowest degree first).
    /// Trailing zero coefficients are trimmed to keep the form canonical.
    pub fn from_coeffs(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::from_coeffs(vec![c])
    }

    /// Samples a uniformly random polynomial of degree **at most** `degree`
    /// whose constant term is exactly `constant`.
    ///
    /// This is the dealer's sampling step: `f(0) = s` with the remaining
    /// `degree` coefficients uniform, so any `degree` evaluations at nonzero
    /// points reveal nothing about `s` (the hiding property).
    pub fn random_with_constant<R: Rng + ?Sized>(constant: F, degree: usize, rng: &mut R) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(constant);
        for _ in 0..degree {
            coeffs.push(F::random(rng));
        }
        Self::from_coeffs(coeffs)
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// The coefficients, lowest degree first (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates at the *process index* `i` (1-based), i.e. at the field
    /// element `i`.
    pub fn eval_at_index(&self, i: u64) -> F {
        self.eval(F::from_u64(i))
    }

    /// The constant term `f(0)` (zero for the zero polynomial).
    #[inline]
    pub fn constant_term(&self) -> F {
        self.coeffs.first().copied().unwrap_or(F::ZERO)
    }

    /// Evaluates at every point of `xs`, appending into `out` (which is
    /// cleared first). Allocation-free once `out` has capacity `xs.len()`.
    pub fn eval_many(&self, xs: &[F], out: &mut Vec<F>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.eval(x)));
    }

    /// Interpolates the unique polynomial of degree `< points.len()` through
    /// the given `(x, y)` points.
    ///
    /// # Errors
    ///
    /// Returns [`InterpolateError::Empty`] for an empty slice and
    /// [`InterpolateError::DuplicateX`] if two x-coordinates coincide.
    pub fn interpolate(points: &[(F, F)]) -> Result<Self, InterpolateError> {
        let mut coeffs = Vec::with_capacity(points.len());
        Self::interpolate_into(points, &mut coeffs)?;
        Ok(Self::from_coeffs(coeffs))
    }

    /// Interpolation into a caller-owned coefficient buffer (cleared and
    /// resized to `points.len()`, coefficients lowest degree first,
    /// untrimmed). Reusing the buffer makes repeated interpolation
    /// allocation-free apart from internal `O(k)` scratch.
    ///
    /// Uses barycentric weights with one batched inversion and recovers
    /// coefficients by synthetic division of the master polynomial
    /// `M(x) = Π (x − x_i)` — `O(k²)` multiplications and a single field
    /// inversion, against `O(k³)` plus `k` inversions for the textbook
    /// per-basis expansion. For interpolation at the fixed process-index
    /// points, [`crate::Domain`] removes the remaining inversion too.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Poly::interpolate`].
    pub fn interpolate_into(
        points: &[(F, F)],
        coeffs: &mut Vec<F>,
    ) -> Result<(), InterpolateError> {
        if points.is_empty() {
            return Err(InterpolateError::Empty);
        }
        for (a, &(xa, _)) in points.iter().enumerate() {
            for &(xb, _) in &points[a + 1..] {
                if xa == xb {
                    return Err(InterpolateError::DuplicateX);
                }
            }
        }
        let k = points.len();
        coeffs.clear();
        coeffs.resize(k, F::ZERO);
        if k == 1 {
            coeffs[0] = points[0].1;
            return Ok(());
        }
        // Barycentric weights w_i = Π_{j≠i} (x_i − x_j)^{-1}, one inversion.
        let mut weights: Vec<F> = Vec::with_capacity(k);
        for (i, &(xi, _)) in points.iter().enumerate() {
            let mut d = F::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i != j {
                    d = d * (xi - xj);
                }
            }
            weights.push(d);
        }
        batch_invert(&mut weights);
        // Master polynomial M(x) = Π (x − x_i), lowest degree first.
        let mut master = vec![F::ZERO; k + 1];
        master[0] = F::ONE;
        for (deg, &(xi, _)) in points.iter().enumerate() {
            master[deg + 1] = master[deg];
            for c in (1..=deg).rev() {
                master[c] = master[c - 1] - xi * master[c];
            }
            master[0] = -(xi * master[0]);
        }
        // Basis numerator M(x)/(x − x_i) by synthetic division, scaled by
        // y_i · w_i and accumulated.
        for (i, &(xi, yi)) in points.iter().enumerate() {
            let scale = yi * weights[i];
            let mut carry = master[k];
            for c in (0..k).rev() {
                coeffs[c] = coeffs[c] + scale * carry;
                carry = master[c] + xi * carry;
            }
            debug_assert!(carry.is_zero(), "x_i must be a root of the master");
        }
        Ok(())
    }

    /// Checked interpolation for reconstruction: succeeds only if a
    /// polynomial of degree at most `max_degree` passes through **all**
    /// points. Returns `None` otherwise (including on duplicate x's).
    ///
    /// This is the predicate the paper's reconstruct protocols apply to
    /// decide between outputting a value and outputting `⊥`.
    pub fn interpolate_checked(points: &[(F, F)], max_degree: usize) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let take = (max_degree + 1).min(points.len());
        let poly = Self::interpolate(&points[..take]).ok()?;
        if poly.degree().unwrap_or(0) > max_degree {
            return None;
        }
        for &(x, y) in &points[take..] {
            if poly.eval(x) != y {
                return None;
            }
        }
        // Reject duplicate x's hidden in the tail.
        for (a, &(xa, _)) in points.iter().enumerate() {
            for &(xb, _) in &points[a + 1..] {
                if xa == xb {
                    return None;
                }
            }
        }
        Some(poly)
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let a = self.coeffs.get(k).copied().unwrap_or(F::ZERO);
            let b = other.coeffs.get(k).copied().unwrap_or(F::ZERO);
            out.push(a + b);
        }
        Self::from_coeffs(out)
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: F) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }
}

impl<F: Field> Default for Poly<F> {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf101, Gf61};
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn zero_poly_invariants() {
        let z = Poly::<Gf61>::zero();
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Gf61::from_u64(5)), Gf61::ZERO);
        assert_eq!(Poly::from_coeffs(vec![Gf61::ZERO; 4]), z);
    }

    #[test]
    fn constant_trimming() {
        let p = Poly::from_coeffs(vec![Gf101::from_u64(7), Gf101::ZERO, Gf101::ZERO]);
        assert_eq!(p.degree(), Some(0));
        assert_eq!(p.eval(Gf101::from_u64(50)), Gf101::from_u64(7));
    }

    #[test]
    fn interpolate_empty_and_duplicates() {
        assert_eq!(
            Poly::<Gf61>::interpolate(&[]).unwrap_err(),
            InterpolateError::Empty
        );
        let x = Gf61::from_u64(3);
        let pts = [(x, Gf61::ONE), (x, Gf61::ZERO)];
        assert_eq!(
            Poly::interpolate(&pts).unwrap_err(),
            InterpolateError::DuplicateX
        );
    }

    #[test]
    fn interpolate_checked_detects_off_curve_point() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = Poly::random_with_constant(Gf61::from_u64(9), 2, &mut rng);
        let mut pts: Vec<(Gf61, Gf61)> = (1..=5u64)
            .map(|i| (Gf61::from_u64(i), p.eval_at_index(i)))
            .collect();
        assert!(Poly::interpolate_checked(&pts, 2).is_some());
        pts[4].1 += Gf61::ONE;
        assert!(Poly::interpolate_checked(&pts, 2).is_none());
    }

    #[test]
    fn interpolate_checked_rejects_high_degree() {
        // Points from a degree-3 polynomial cannot be fit with max_degree 2.
        let p = Poly::from_coeffs(vec![
            Gf101::from_u64(1),
            Gf101::from_u64(0),
            Gf101::from_u64(0),
            Gf101::from_u64(5),
        ]);
        let pts: Vec<_> = (1..=6u64)
            .map(|i| (Gf101::from_u64(i), p.eval_at_index(i)))
            .collect();
        assert!(Poly::interpolate_checked(&pts, 3).is_some());
        assert!(Poly::interpolate_checked(&pts, 2).is_none());
    }

    #[test]
    fn interpolate_checked_rejects_duplicate_in_tail() {
        let pts = [
            (Gf101::from_u64(1), Gf101::from_u64(4)),
            (Gf101::from_u64(2), Gf101::from_u64(4)),
            (Gf101::from_u64(2), Gf101::from_u64(4)),
        ];
        assert!(Poly::interpolate_checked(&pts, 1).is_none());
    }

    proptest! {
        #[test]
        fn interpolation_round_trip(
            seed in any::<u64>(),
            degree in 0usize..6,
            secret in 0u64..1_000_000,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = Poly::random_with_constant(Gf61::from_u64(secret), degree, &mut rng);
            let pts: Vec<(Gf61, Gf61)> = (1..=(degree as u64 + 1))
                .map(|i| (Gf61::from_u64(i), p.eval_at_index(i)))
                .collect();
            let q = Poly::interpolate(&pts).unwrap();
            prop_assert_eq!(q.clone(), p);
            prop_assert_eq!(q.eval(Gf61::ZERO), Gf61::from_u64(secret));
        }

        #[test]
        fn any_t_plus_one_points_determine_poly(
            seed in any::<u64>(),
            // choose 4 distinct evaluation indices out of 1..=9
            perm in proptest::sample::subsequence((1u64..=9).collect::<Vec<_>>(), 4),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = Poly::random_with_constant(Gf61::from_u64(77), 3, &mut rng);
            let pts: Vec<(Gf61, Gf61)> = perm
                .iter()
                .map(|&i| (Gf61::from_u64(i), p.eval_at_index(i)))
                .collect();
            prop_assert_eq!(Poly::interpolate(&pts).unwrap(), p);
        }

        #[test]
        fn add_and_scale_agree_with_pointwise(
            a in proptest::collection::vec(0u64..101, 0..5),
            b in proptest::collection::vec(0u64..101, 0..5),
            s in 0u64..101,
            x in 0u64..101,
        ) {
            let pa = Poly::from_coeffs(a.into_iter().map(Gf101::from_u64).collect());
            let pb = Poly::from_coeffs(b.into_iter().map(Gf101::from_u64).collect());
            let s = Gf101::from_u64(s);
            let x = Gf101::from_u64(x);
            prop_assert_eq!(pa.add(&pb).eval(x), pa.eval(x) + pb.eval(x));
            prop_assert_eq!(pa.scale(s).eval(x), pa.eval(x) * s);
        }
    }

    /// Hiding, exhaustively over GF(101): for a degree-1 polynomial with a
    /// fixed secret, the value at index 1 is uniform over the field.
    #[test]
    fn single_share_distribution_is_uniform() {
        use std::collections::HashMap;
        for secret in [0u64, 1, 50] {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            // Enumerate all degree-1 polynomials with f(0) = secret.
            for a1 in Gf101::all() {
                let p = Poly::from_coeffs(vec![Gf101::from_u64(secret), a1]);
                *counts.entry(p.eval_at_index(1).as_u64()).or_default() += 1;
            }
            assert_eq!(counts.len(), 101);
            assert!(counts.values().all(|&c| c == 1), "share not uniform");
        }
    }
}
