//! Precomputed evaluation domains for the process-index points `1..=n`.
//!
//! Every SVSS/coin instance interpolates and evaluates polynomials at the
//! *same* points — the process indices — thousands of times per session.
//! [`Domain`] precomputes, once per instance:
//!
//! - the field elements `x_i = i` for `i ∈ 1..=n`, and
//! - the inverses of every possible index difference `1..n` (so the
//!   inverse of `x_i − x_j` is a table lookup, never a Fermat
//!   exponentiation).
//!
//! With those tables, Lagrange interpolation over any subset of the domain
//! needs **zero** field inversions: the barycentric weights
//! `w_m = Π_{j≠m} (x_m − x_j)^{-1}` are products of table entries, and
//! coefficient recovery is a synthetic division of the master polynomial
//! `M(x) = Π (x − x_m)` — `O(k²)` multiplications total, against `O(k³)`
//! multiplications plus `k` inversions for the textbook formula.
//!
//! The domain is capped at [`MAX_DOMAIN`] points, matching the workspace
//! process-count cap (`sba_net::MAX_N` — tied by a compile-time assert on
//! the `sba-net` side); interpolation scratch still lives on the stack
//! (a few KiB of fixed-size arrays).

use std::fmt;

use crate::{batch_invert, Field, InterpolateError, Poly};

/// Largest supported domain (process count). Matches `sba_net::MAX_N`,
/// the workspace-wide process cap (asserted at compile time in `sba-net`,
/// which depends on this crate).
pub const MAX_DOMAIN: usize = 256;

/// Words in the duplicate-index bitmask used by `check_indices`.
const SEEN_WORDS: usize = MAX_DOMAIN / 64;
const _: () = assert!(
    MAX_DOMAIN.is_multiple_of(64),
    "seen-bitmask words must be fully used"
);

/// A precomputed evaluation domain over the points `1..=n`.
///
/// Construct one per protocol instance and share it (e.g. behind an `Arc`)
/// with every state machine of that instance.
///
/// # Examples
///
/// ```
/// use sba_field::{Domain, Field, Gf61, Poly};
///
/// let domain: Domain<Gf61> = Domain::new(7);
/// let p = Poly::from_coeffs(vec![Gf61::from_u64(3), Gf61::from_u64(2)]);
/// let pts: Vec<(u64, Gf61)> = (1..=3).map(|i| (i, p.eval_at_index(i))).collect();
/// // Recover the secret p(0) without computing coefficients:
/// assert_eq!(domain.interpolate_at_zero(&pts).unwrap(), Gf61::from_u64(3));
/// // Or recover the full polynomial:
/// assert_eq!(domain.interpolate(&pts).unwrap(), p);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Domain<F> {
    /// `points[k]` is the field element `k + 1`.
    points: Vec<F>,
    /// `inv_small[d]` is the inverse of the field element `d`, `d ∈ 1..=n`
    /// (`inv_small[0]` is unused and set to zero).
    inv_small: Vec<F>,
}

impl<F: Field> Domain<F> {
    /// Builds the domain `{1, …, n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, exceeds [`MAX_DOMAIN`], or is not smaller
    /// than the field modulus (the points must be distinct and nonzero).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "domain needs at least one point");
        assert!(n <= MAX_DOMAIN, "domain capped at {MAX_DOMAIN} points");
        assert!((n as u64) < F::MODULUS, "domain points must be distinct");
        let points: Vec<F> = (1..=n as u64).map(F::from_u64).collect();
        let mut inv_small = points.clone();
        batch_invert(&mut inv_small);
        inv_small.insert(0, F::ZERO);
        Domain { points, inv_small }
    }

    /// Number of points in the domain.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// The domain points `1..=n` as field elements.
    pub fn points(&self) -> &[F] {
        &self.points
    }

    /// The field element for 1-based index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `1..=n`.
    #[inline]
    pub fn point(&self, i: u64) -> F {
        self.points[(i - 1) as usize]
    }

    /// Whether `i` is a valid 1-based domain index.
    #[inline]
    pub fn contains_index(&self, i: u64) -> bool {
        i >= 1 && i <= self.points.len() as u64
    }

    /// The inverse of `x_i − x_j` (both 1-based domain indices, `i ≠ j`),
    /// via the difference table — no inversion.
    #[inline]
    fn inv_diff(&self, i: u64, j: u64) -> F {
        if i > j {
            self.inv_small[(i - j) as usize]
        } else {
            -self.inv_small[(j - i) as usize]
        }
    }

    /// The field element `x_i − x_j` for 1-based indices (`i ≠ j`).
    #[inline]
    fn diff(&self, i: u64, j: u64) -> F {
        if i > j {
            self.points[(i - j - 1) as usize]
        } else {
            -self.points[(j - i - 1) as usize]
        }
    }

    /// Validates that every index is in `1..=n` and no index repeats.
    /// Returns the duplicate-free bitmask check result.
    fn check_indices(&self, pts: &[(u64, F)]) -> Result<(), InterpolateError> {
        let mut seen = [0u64; SEEN_WORDS];
        for &(i, _) in pts {
            if !self.contains_index(i) {
                return Err(InterpolateError::OutOfDomain);
            }
            let (w, bit) = (((i - 1) / 64) as usize, 1u64 << ((i - 1) % 64));
            if seen[w] & bit != 0 {
                return Err(InterpolateError::DuplicateX);
            }
            seen[w] |= bit;
        }
        Ok(())
    }

    /// Evaluates the interpolant through `pts` at zero — the "recover the
    /// secret" operation — without materialising coefficients.
    ///
    /// `O(k²)` multiplications, no inversions, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`InterpolateError::Empty`] on an empty slice,
    /// [`InterpolateError::DuplicateX`] on a repeated index, and
    /// [`InterpolateError::OutOfDomain`] on an index outside `1..=n`.
    pub fn interpolate_at_zero(&self, pts: &[(u64, F)]) -> Result<F, InterpolateError> {
        if pts.is_empty() {
            return Err(InterpolateError::Empty);
        }
        self.check_indices(pts)?;
        // f(0) = Σ_m y_m Π_{j≠m} x_j / (x_j − x_m), all factors tabled.
        let mut acc = F::ZERO;
        for &(im, ym) in pts {
            let mut lm = ym;
            for &(ij, _) in pts {
                if ij != im {
                    lm = lm * self.point(ij) * self.inv_diff(ij, im);
                }
            }
            acc = acc + lm;
        }
        Ok(acc)
    }

    /// Evaluates the interpolant through `pts` at the domain point
    /// `target` (which may or may not be one of the interpolation points).
    ///
    /// `O(k²)` multiplications, no inversions, no allocation.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Domain::interpolate_at_zero`], plus
    /// [`InterpolateError::OutOfDomain`] if `target` is outside `1..=n`.
    pub fn eval_at_index(&self, pts: &[(u64, F)], target: u64) -> Result<F, InterpolateError> {
        if pts.is_empty() {
            return Err(InterpolateError::Empty);
        }
        if !self.contains_index(target) {
            return Err(InterpolateError::OutOfDomain);
        }
        self.check_indices(pts)?;
        // If target coincides with a base point the Lagrange terms collapse
        // to exactly y_target (every other basis polynomial vanishes).
        if let Some(&(_, y)) = pts.iter().find(|&&(i, _)| i == target) {
            return Ok(y);
        }
        let mut acc = F::ZERO;
        for &(im, ym) in pts {
            let mut lm = ym;
            for &(ij, _) in pts {
                if ij != im {
                    lm = lm * self.diff(target, ij) * self.inv_diff(im, ij);
                }
            }
            acc = acc + lm;
        }
        Ok(acc)
    }

    /// Checked secret recovery: succeeds only if one polynomial of degree
    /// at most `max_degree` passes through **all** points, returning its
    /// value at zero. The domain analogue of
    /// [`Poly::interpolate_checked`].
    ///
    /// The barycentric weights of the `k = max_degree + 1` base points
    /// are computed **once** (`O(k²)`) and shared by every surplus-point
    /// check and the final evaluation at zero (`O(k)` each) — total
    /// `O(k² + k·surplus)` where the per-point [`Domain::eval_at_index`]
    /// loop this replaces cost `O(k²·surplus)`. With full verification
    /// quorums (`surplus ≈ k`) that is the difference between quadratic
    /// and cubic, which is exactly what the `domain_batch_verify_t20`
    /// microbenchmark measures.
    pub fn interpolate_checked_at_zero(&self, pts: &[(u64, F)], max_degree: usize) -> Option<F> {
        if pts.is_empty() || self.check_indices(pts).is_err() {
            return None;
        }
        let take = (max_degree + 1).min(pts.len());
        let (base, tail) = pts.split_at(take);
        // Barycentric weights w_m = Π_{j≠m} (x_m − x_j)^{-1}: every
        // factor is a difference-table lookup, no inversions.
        let mut w = [F::ZERO; MAX_DOMAIN];
        for (a, &(im, _)) in base.iter().enumerate() {
            let mut wm = F::ONE;
            for &(ij, _) in base {
                if ij != im {
                    wm = wm * self.inv_diff(im, ij);
                }
            }
            w[a] = wm;
        }
        // Each surplus point must sit on the base interpolant:
        // f(x) = M(x) · Σ_m y_m w_m / (x − x_m) with M(x) = Π_j (x − x_j).
        // Tail indices are distinct from base indices (duplicate check
        // above), so every difference is nonzero and tabled.
        for &(i, y) in tail {
            let mut master = F::ONE;
            let mut sum = F::ZERO;
            for (a, &(im, ym)) in base.iter().enumerate() {
                master = master * self.diff(i, im);
                sum = sum + ym * w[a] * self.inv_diff(i, im);
            }
            if master * sum != y {
                return None;
            }
        }
        // f(0) with the same weights: M(0) = Π (−x_j), (0 − x_m)^{-1} =
        // −x_m^{-1} (the small-inverse table).
        let mut master0 = F::ONE;
        let mut sum0 = F::ZERO;
        for (a, &(im, ym)) in base.iter().enumerate() {
            master0 = master0 * (-self.point(im));
            sum0 = sum0 + ym * w[a] * (-self.inv_small[im as usize]);
        }
        Some(master0 * sum0)
    }

    /// Interpolates the unique polynomial of degree `< pts.len()` through
    /// the given `(index, value)` points, writing its coefficients
    /// (lowest degree first, untrimmed) into `coeffs`.
    ///
    /// `O(k²)` multiplications, no inversions; allocation-free once
    /// `coeffs` has capacity `k`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Domain::interpolate_at_zero`].
    pub fn interpolate_into(
        &self,
        pts: &[(u64, F)],
        coeffs: &mut Vec<F>,
    ) -> Result<(), InterpolateError> {
        if pts.is_empty() {
            return Err(InterpolateError::Empty);
        }
        self.check_indices(pts)?;
        let k = pts.len();
        coeffs.clear();
        coeffs.resize(k, F::ZERO);
        if k == 1 {
            coeffs[0] = pts[0].1;
            return Ok(());
        }
        // Master polynomial M(x) = Π (x − x_m), lowest degree first.
        let mut master = [F::ZERO; MAX_DOMAIN + 1];
        master[0] = F::ONE;
        for (deg, &(i, _)) in pts.iter().enumerate() {
            let xi = self.point(i);
            master[deg + 1] = master[deg];
            for c in (1..=deg).rev() {
                master[c] = master[c - 1] - xi * master[c];
            }
            master[0] = -(xi * master[0]);
        }
        // Each basis numerator is M(x)/(x − x_m), recovered by synthetic
        // division and scaled by y_m · w_m with the tabled weight.
        for &(im, ym) in pts {
            let xm = self.point(im);
            let mut w = ym;
            for &(ij, _) in pts {
                if ij != im {
                    w = w * self.inv_diff(im, ij);
                }
            }
            let mut carry = master[k]; // leading coefficient, always 1
            for c in (0..k).rev() {
                coeffs[c] = coeffs[c] + w * carry;
                carry = master[c] + xm * carry;
            }
            debug_assert!(carry.is_zero(), "x_m must be a root of the master");
        }
        Ok(())
    }

    /// Interpolates the unique polynomial of degree `< pts.len()` through
    /// the given `(index, value)` points.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Domain::interpolate_at_zero`].
    pub fn interpolate(&self, pts: &[(u64, F)]) -> Result<Poly<F>, InterpolateError> {
        let mut coeffs = Vec::with_capacity(pts.len());
        self.interpolate_into(pts, &mut coeffs)?;
        Ok(Poly::from_coeffs(coeffs))
    }

    /// Checked interpolation: succeeds only if a polynomial of degree at
    /// most `max_degree` passes through **all** points. The domain
    /// analogue of [`Poly::interpolate_checked`].
    pub fn interpolate_checked(&self, pts: &[(u64, F)], max_degree: usize) -> Option<Poly<F>> {
        if pts.is_empty() || self.check_indices(pts).is_err() {
            return None;
        }
        let take = (max_degree + 1).min(pts.len());
        let (base, tail) = pts.split_at(take);
        let poly = self.interpolate(base).expect("base checked");
        for &(i, y) in tail {
            if poly.eval(self.point(i)) != y {
                return None;
            }
        }
        Some(poly)
    }
}

impl<F: Field> fmt::Debug for Domain<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Domain(1..={})", self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf101, Gf61};
    use rand::SeedableRng;

    fn poly_and_points(degree: usize, secret: u64, seed: u64) -> (Poly<Gf61>, Vec<(u64, Gf61)>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Poly::random_with_constant(Gf61::from_u64(secret), degree, &mut rng);
        let pts = (1..=(degree as u64 + 1))
            .map(|i| (i, p.eval_at_index(i)))
            .collect();
        (p, pts)
    }

    #[test]
    fn interpolate_matches_naive() {
        let domain: Domain<Gf61> = Domain::new(12);
        for degree in 0..6 {
            let (p, pts) = poly_and_points(degree, 99, degree as u64 + 1);
            assert_eq!(domain.interpolate(&pts).unwrap(), p);
            let naive: Vec<(Gf61, Gf61)> =
                pts.iter().map(|&(i, y)| (Gf61::from_u64(i), y)).collect();
            assert_eq!(Poly::interpolate(&naive).unwrap(), p);
        }
    }

    #[test]
    fn interpolate_at_zero_recovers_secret() {
        let domain: Domain<Gf61> = Domain::new(9);
        let (_, pts) = poly_and_points(4, 1234, 7);
        assert_eq!(
            domain.interpolate_at_zero(&pts).unwrap(),
            Gf61::from_u64(1234)
        );
    }

    #[test]
    fn eval_at_index_matches_poly_eval() {
        let domain: Domain<Gf101> = Domain::new(20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = Poly::random_with_constant(Gf101::from_u64(5), 3, &mut rng);
        let pts: Vec<(u64, Gf101)> = (2..=5).map(|i| (i, p.eval_at_index(i))).collect();
        for target in 1..=20u64 {
            assert_eq!(
                domain.eval_at_index(&pts, target).unwrap(),
                p.eval_at_index(target),
                "target {target}"
            );
        }
    }

    #[test]
    fn error_paths() {
        let domain: Domain<Gf61> = Domain::new(4);
        let y = Gf61::ONE;
        assert_eq!(
            domain.interpolate_at_zero(&[]).unwrap_err(),
            InterpolateError::Empty
        );
        assert_eq!(
            domain.interpolate_at_zero(&[(2, y), (2, y)]).unwrap_err(),
            InterpolateError::DuplicateX
        );
        assert_eq!(
            domain.interpolate_at_zero(&[(5, y)]).unwrap_err(),
            InterpolateError::OutOfDomain
        );
        assert_eq!(
            domain.interpolate_at_zero(&[(0, y)]).unwrap_err(),
            InterpolateError::OutOfDomain
        );
        assert!(domain
            .interpolate_checked_at_zero(&[(2, y), (2, y)], 1)
            .is_none());
        assert!(domain.interpolate_checked(&[(9, y)], 1).is_none());
    }

    #[test]
    fn checked_at_zero_detects_off_curve_point() {
        let domain: Domain<Gf61> = Domain::new(8);
        let (_, mut pts) = poly_and_points(2, 42, 5);
        pts.push((7, domain.eval_at_index(&pts, 7).unwrap()));
        assert_eq!(
            domain.interpolate_checked_at_zero(&pts, 2),
            Some(Gf61::from_u64(42))
        );
        pts[3].1 += Gf61::ONE;
        assert_eq!(domain.interpolate_checked_at_zero(&pts, 2), None);
    }

    #[test]
    fn checked_matches_poly_checked() {
        let domain: Domain<Gf101> = Domain::new(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let p = Poly::random_with_constant(Gf101::from_u64(7), 3, &mut rng);
        let pts: Vec<(u64, Gf101)> = (1..=7).map(|i| (i, p.eval_at_index(i))).collect();
        let naive: Vec<(Gf101, Gf101)> =
            pts.iter().map(|&(i, y)| (Gf101::from_u64(i), y)).collect();
        assert_eq!(
            domain.interpolate_checked(&pts, 3),
            Poly::interpolate_checked(&naive, 3)
        );
        assert!(domain.interpolate_checked(&pts, 2).is_none());
        assert!(Poly::interpolate_checked(&naive, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_sized_domain_rejected() {
        let _: Domain<Gf61> = Domain::new(0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_domain_rejected() {
        let _: Domain<Gf61> = Domain::new(MAX_DOMAIN + 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn domain_wider_than_field_rejected() {
        // Gf101 only has 100 nonzero points, below MAX_DOMAIN: the modulus
        // check must fire before any point collides with zero.
        let _: Domain<Gf101> = Domain::new(101);
    }

    #[test]
    fn max_domain_boundary_accepted() {
        let domain: Domain<Gf61> = Domain::new(MAX_DOMAIN);
        assert_eq!(domain.n(), MAX_DOMAIN);
        assert!(domain.contains_index(MAX_DOMAIN as u64));
        assert!(!domain.contains_index(MAX_DOMAIN as u64 + 1));
    }
}
