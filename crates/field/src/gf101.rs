//! `GF(101)`: a deliberately tiny field for exhaustive and statistical tests.
//!
//! With only 101 elements, property tests can enumerate meaningful portions
//! of the space (e.g. the hiding experiment E7 compares share-transcript
//! distributions across all secrets).

use rand::Rng;

use crate::traits::{impl_field_ops, Field};

/// The prime modulus 101.
pub const P101: u64 = 101;

/// An element of `GF(101)`, stored as its canonical representative.
///
/// # Examples
///
/// ```
/// use sba_field::{Field, Gf101};
///
/// assert_eq!(Gf101::from_u64(100) + Gf101::ONE, Gf101::ZERO);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gf101(u64);

impl Gf101 {
    #[inline]
    fn add_impl(self, rhs: Self) -> Self {
        Gf101((self.0 + rhs.0) % P101)
    }

    #[inline]
    fn sub_impl(self, rhs: Self) -> Self {
        Gf101((self.0 + P101 - rhs.0) % P101)
    }

    #[inline]
    fn mul_impl(self, rhs: Self) -> Self {
        Gf101((self.0 * rhs.0) % P101)
    }

    #[inline]
    fn neg_impl(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Gf101(P101 - self.0)
        }
    }

    /// Iterates over every element of the field, `0..=100`.
    pub fn all() -> impl Iterator<Item = Gf101> {
        (0..P101).map(Gf101)
    }
}

impl_field_ops!(Gf101);

impl Field for Gf101 {
    const ZERO: Self = Gf101(0);
    const ONE: Self = Gf101(1);
    const MODULUS: u64 = P101;

    fn from_u64(v: u64) -> Self {
        Gf101(v % P101)
    }

    fn as_u64(self) -> u64 {
        self.0
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf101(rng.gen_range(0..P101))
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "attempted to invert zero in GF(101)");
        self.pow(P101 - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_inverses() {
        for a in Gf101::all() {
            if a == Gf101::ZERO {
                continue;
            }
            assert_eq!(a * a.inv(), Gf101::ONE, "bad inverse for {a}");
        }
    }

    #[test]
    fn exhaustive_add_sub_round_trip() {
        for a in Gf101::all() {
            for b in Gf101::all() {
                assert_eq!((a + b) - b, a);
                assert_eq!((a * b), (b * a));
            }
        }
    }

    #[test]
    fn all_yields_distinct_101() {
        let v: Vec<_> = Gf101::all().collect();
        assert_eq!(v.len(), 101);
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 101);
    }
}
