#![warn(missing_docs)]

//! Finite-field and polynomial arithmetic for the `sba` workspace.
//!
//! The SVSS protocols of Abraham–Dolev–Halpern (PODC 2008) operate over an
//! arbitrary finite field `F` with `|F| > n`. This crate provides:
//!
//! - the [`Field`] trait abstracting a prime field,
//! - [`Gf61`], the production field `GF(2^61 − 1)` with fast Mersenne
//!   reduction,
//! - [`Gf101`], a tiny field used by exhaustive property tests,
//! - [`Poly`], univariate degree-bounded polynomials with Lagrange
//!   interpolation,
//! - [`Domain`], a precomputed evaluation domain over the process indices
//!   `1..=n` that makes interpolation and secret recovery inversion-free
//!   (the protocols' hot path — build one per instance and share it),
//! - [`BiPoly`], bivariate polynomials of degree `t` in each variable, with
//!   the row/column extraction (`g_j(y) = f(j, y)`, `h_j(x) = f(x, j)`)
//!   used by the SVSS share protocol.
//!
//! # Examples
//!
//! Share-style sampling: a random degree-`t` polynomial with a fixed
//! constant term, evaluated at process indices.
//!
//! ```
//! use rand::SeedableRng;
//! use sba_field::{Field, Gf61, Poly};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let secret = Gf61::from_u64(42);
//! let poly = Poly::random_with_constant(secret, 2, &mut rng);
//! // Any 3 = t+1 evaluations reconstruct the secret.
//! let pts: Vec<(Gf61, Gf61)> = (1..=3u64)
//!     .map(|i| (Gf61::from_u64(i), poly.eval(Gf61::from_u64(i))))
//!     .collect();
//! let back = Poly::interpolate(&pts).expect("distinct x's");
//! assert_eq!(back.eval(Gf61::ZERO), secret);
//! ```

mod bipoly;
mod domain;
mod gf101;
mod gf61;
mod poly;
mod traits;

pub use bipoly::BiPoly;
pub use domain::{Domain, MAX_DOMAIN};
pub use gf101::Gf101;
pub use gf61::Gf61;
pub use poly::{batch_invert, InterpolateError, Poly};
pub use traits::Field;
