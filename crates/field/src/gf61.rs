//! `GF(2^61 − 1)`: the production field.
//!
//! `p = 2^61 − 1` is a Mersenne prime, so reduction after a 128-bit product
//! is two shifts and adds. `|F| ≈ 2.3 · 10^18` comfortably exceeds any
//! realistic process count `n`, as §3.2 of the paper requires (`|F| > n`).

use rand::Rng;

use crate::traits::{impl_field_ops, Field};

/// The Mersenne prime `2^61 − 1`.
pub const P61: u64 = (1u64 << 61) - 1;

/// `pow_mod` for compile-time table construction (square-and-multiply over
/// `u128`, reduced mod `P61`).
const fn pow_mod61(mut base: u64, mut e: u64) -> u64 {
    let mut acc: u64 = 1;
    while e > 0 {
        if e & 1 == 1 {
            acc = ((acc as u128 * base as u128) % P61 as u128) as u64;
        }
        base = ((base as u128 * base as u128) % P61 as u128) as u64;
        e >>= 1;
    }
    acc
}

/// Inverses of the small integers `1..=64` — the index differences the
/// interpolation domain needs — computed at compile time by Fermat.
/// Entry 0 is unused.
const SMALL_INV: [u64; 65] = {
    let mut table = [0u64; 65];
    let mut d = 1usize;
    while d < 65 {
        table[d] = pow_mod61(d as u64, P61 - 2);
        d += 1;
    }
    table
};

/// An element of `GF(2^61 − 1)`, stored as its canonical representative.
///
/// # Examples
///
/// ```
/// use sba_field::{Field, Gf61};
///
/// let a = Gf61::from_u64(Gf61::MODULUS - 1);
/// assert_eq!(a + Gf61::ONE, Gf61::ZERO);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gf61(u64);

impl Gf61 {
    /// Reduces an arbitrary `u128` modulo `2^61 − 1` using the Mersenne
    /// identity `2^61 ≡ 1 (mod p)`. Products of canonical representatives
    /// take the cheaper [`Gf61::reduce_product`] path; this general form
    /// is kept as the reference reduction.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    fn reduce128(x: u128) -> u64 {
        // Split into three 61-bit limbs; x < 2^128 so the top limb is < 2^6.
        let lo = (x as u64) & P61;
        let mid = ((x >> 61) as u64) & P61;
        let hi = (x >> 122) as u64; // < 2^6
        let mut s = lo + mid + hi; // < 3 * 2^61 < 2^63: no overflow
        s = (s & P61) + (s >> 61);
        if s >= P61 {
            s -= P61;
        }
        s
    }

    #[inline]
    fn add_impl(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0; // both < 2^61, no overflow
        if s >= P61 {
            s -= P61;
        }
        Gf61(s)
    }

    #[inline]
    fn sub_impl(self, rhs: Self) -> Self {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P61 - rhs.0
        };
        Gf61(s)
    }

    /// Reduces a product of two canonical representatives (`< 2^122`):
    /// one limb split fewer than the general [`Gf61::reduce128`].
    #[inline]
    fn reduce_product(x: u128) -> u64 {
        let lo = (x as u64) & P61;
        let hi = (x >> 61) as u64; // < 2^61 because x < 2^122
        let s = lo + hi; // < 2^62
        let mut s = (s & P61) + (s >> 61);
        if s >= P61 {
            s -= P61;
        }
        s
    }

    #[inline]
    fn mul_impl(self, rhs: Self) -> Self {
        Gf61(Self::reduce_product(u128::from(self.0) * u128::from(rhs.0)))
    }

    /// `self^(2^k)` by repeated squaring.
    #[inline]
    fn sqn(self, k: u32) -> Self {
        let mut x = self;
        for _ in 0..k {
            x = x.mul_impl(x);
        }
        x
    }

    #[inline]
    fn neg_impl(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Gf61(P61 - self.0)
        }
    }
}

impl_field_ops!(Gf61);

impl Field for Gf61 {
    const ZERO: Self = Gf61(0);
    const ONE: Self = Gf61(1);
    const MODULUS: u64 = P61;

    fn from_u64(v: u64) -> Self {
        // v < 2^64 = 8 * 2^61, two folding rounds reach canonical range.
        let mut s = (v & P61) + (v >> 61);
        if s >= P61 {
            s -= P61;
        }
        Gf61(s)
    }

    fn as_u64(self) -> u64 {
        self.0
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf61(rng.gen_range(0..P61))
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "attempted to invert zero in GF(2^61-1)");
        // Small inputs (process-index differences) come straight from the
        // compile-time table.
        if self.0 < SMALL_INV.len() as u64 {
            return Gf61(SMALL_INV[self.0 as usize]);
        }
        // Fermat a^(p−2) with an addition chain: p − 2 = 2^61 − 3
        // = (2^59 − 1)·4 + 1, and 2^59 − 1 builds from the classic
        // 2^k − 1 ladder — 60 squarings + 10 multiplies, versus ~119
        // multiplies for generic square-and-multiply.
        let a1 = self;
        let a2 = a1.sqn(1) * a1; // 2^2 − 1
        let a4 = a2.sqn(2) * a2; // 2^4 − 1
        let a8 = a4.sqn(4) * a4; // 2^8 − 1
        let a16 = a8.sqn(8) * a8; // 2^16 − 1
        let a32 = a16.sqn(16) * a16; // 2^32 − 1
        let a48 = a32.sqn(16) * a16; // 2^48 − 1
        let a56 = a48.sqn(8) * a8; // 2^56 − 1
        let a58 = a56.sqn(2) * a2; // 2^58 − 1
        let a59 = a58.sqn(1) * a1; // 2^59 − 1
        a59.sqn(2) * a1 // (2^59 − 1)·4 + 1 = 2^61 − 3
    }
}

impl From<u32> for Gf61 {
    fn from(v: u32) -> Self {
        Gf61(u64::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn el() -> impl Strategy<Value = Gf61> {
        (0..P61).prop_map(Gf61)
    }

    proptest! {
        #[test]
        fn add_commutes(a in el(), b in el()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn mul_commutes(a in el(), b in el()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn add_associates(a in el(), b in el(), c in el()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn mul_associates(a in el(), b in el(), c in el()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributive(a in el(), b in el(), c in el()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_is_add_neg(a in el(), b in el()) {
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn inverse_round_trip(a in el()) {
            prop_assume!(a != Gf61::ZERO);
            prop_assert_eq!(a * a.inv(), Gf61::ONE);
            prop_assert_eq!(a / a, Gf61::ONE);
        }

        #[test]
        fn from_u64_canonical(v in any::<u64>()) {
            let x = Gf61::from_u64(v);
            prop_assert!(x.as_u64() < P61);
            prop_assert_eq!(u128::from(x.as_u64()) % u128::from(P61),
                            u128::from(v) % u128::from(P61));
        }

        #[test]
        fn reduce128_matches_bigint(hi in any::<u64>(), lo in any::<u64>()) {
            let x = (u128::from(hi) << 64) | u128::from(lo);
            prop_assert_eq!(u128::from(Gf61::reduce128(x)), x % u128::from(P61));
        }

        #[test]
        fn reduce_product_matches_bigint(a in 0..P61, b in 0..P61) {
            let x = u128::from(a) * u128::from(b);
            prop_assert_eq!(u128::from(Gf61::reduce_product(x)), x % u128::from(P61));
        }

        #[test]
        fn inv_chain_matches_fermat_pow(a in el()) {
            prop_assume!(a != Gf61::ZERO);
            prop_assert_eq!(a.inv(), a.pow(P61 - 2));
        }
    }

    #[test]
    fn small_inverse_table_is_correct() {
        for d in 1u64..65 {
            let x = Gf61::from_u64(d);
            assert_eq!(x * x.inv(), Gf61::ONE, "bad table inverse for {d}");
            assert_eq!(x.inv(), x.pow(P61 - 2), "table/Fermat mismatch at {d}");
        }
    }

    #[test]
    fn modulus_edge_cases() {
        assert_eq!(Gf61::from_u64(P61), Gf61::ZERO);
        assert_eq!(Gf61::from_u64(P61 + 1), Gf61::ONE);
        assert_eq!(Gf61::from_u64(u64::MAX).as_u64(), u64::MAX % P61);
        assert_eq!(-Gf61::ZERO, Gf61::ZERO);
        assert_eq!(Gf61::ONE + Gf61::from_u64(P61 - 1), Gf61::ZERO);
    }

    #[test]
    fn random_is_in_range_and_varies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let xs: Vec<Gf61> = (0..64).map(|_| Gf61::random(&mut rng)).collect();
        assert!(xs.iter().all(|x| x.as_u64() < P61));
        assert!(xs.windows(2).any(|w| w[0] != w[1]), "64 samples all equal");
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn invert_zero_panics() {
        let _ = Gf61::ZERO.inv();
    }
}
