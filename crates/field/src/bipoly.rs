//! Bivariate polynomials of degree `t` in each variable.
//!
//! The SVSS share protocol (§4 of the paper) deals a random bivariate
//! `f(x, y)` with `f(0,0) = s` and hands process `j` the row `g_j(y) =
//! f(j, y)` and the column `h_j(x) = f(x, j)`. Reconstruction stitches rows
//! and columns back together and checks the pairwise consistency
//! `h_k(l) = g_l(k)`.

use rand::Rng;

use crate::{Field, Poly};

/// A bivariate polynomial `f(x, y) = Σ_{i,j ≤ t} a_{ij} x^i y^j` of degree
/// at most `t` in each variable.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sba_field::{BiPoly, Field, Gf61};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let f = BiPoly::random_with_secret(Gf61::from_u64(5), 2, &mut rng);
/// // Row j evaluated at l equals column l evaluated at j: f(j, l).
/// let (j, l) = (3u64, 7u64);
/// assert_eq!(f.row(j).eval_at_index(l), f.col(l).eval_at_index(j));
/// assert_eq!(f.eval_indices(0, 0), Gf61::from_u64(5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BiPoly<F: Field> {
    /// `coeffs[i][j]` is the coefficient of `x^i y^j`; both dims are `t+1`.
    coeffs: Vec<Vec<F>>,
    degree: usize,
}

impl<F: Field> BiPoly<F> {
    /// Samples a uniformly random bivariate polynomial of degree `t` in each
    /// variable with `f(0,0) = secret` (all other `(t+1)² − 1` coefficients
    /// uniform), exactly as SVSS share step 1 prescribes.
    pub fn random_with_secret<R: Rng + ?Sized>(secret: F, t: usize, rng: &mut R) -> Self {
        let mut coeffs = vec![vec![F::ZERO; t + 1]; t + 1];
        for (i, row) in coeffs.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                *c = if i == 0 && j == 0 {
                    secret
                } else {
                    F::random(rng)
                };
            }
        }
        BiPoly { coeffs, degree: t }
    }

    /// Builds a bivariate polynomial from explicit coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is not a square `(t+1) × (t+1)` matrix for some `t`.
    pub fn from_coeffs(coeffs: Vec<Vec<F>>) -> Self {
        let n = coeffs.len();
        assert!(n > 0, "coefficient matrix must be nonempty");
        assert!(
            coeffs.iter().all(|r| r.len() == n),
            "coefficient matrix must be square"
        );
        BiPoly {
            coeffs,
            degree: n - 1,
        }
    }

    /// The per-variable degree bound `t`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Evaluates `f(x, y)`.
    pub fn eval(&self, x: F, y: F) -> F {
        // Horner in x over inner Horner in y.
        let mut acc = F::ZERO;
        for row in self.coeffs.iter().rev() {
            let mut inner = F::ZERO;
            for &c in row.iter().rev() {
                inner = inner * y + c;
            }
            acc = acc * x + inner;
        }
        acc
    }

    /// Evaluates at (1-based) process indices.
    pub fn eval_indices(&self, i: u64, j: u64) -> F {
        self.eval(F::from_u64(i), F::from_u64(j))
    }

    /// The row polynomial `g_j(y) = f(j, y)` for process index `j`.
    pub fn row(&self, j: u64) -> Poly<F> {
        let mut out = Vec::with_capacity(self.degree + 1);
        self.row_into(j, &mut out);
        Poly::from_coeffs(out)
    }

    /// Writes the coefficients of `g_j(y) = f(j, y)` into `out` (cleared
    /// first, lowest degree first, untrimmed). Allocation-free once `out`
    /// has capacity `t + 1`.
    pub fn row_into(&self, j: u64, out: &mut Vec<F>) {
        let x = F::from_u64(j);
        // Collapse the x dimension: coefficient of y^k is Σ_i a_{ik} x^i.
        out.clear();
        out.resize(self.degree + 1, F::ZERO);
        let mut xp = F::ONE;
        for row in &self.coeffs {
            for (k, &c) in row.iter().enumerate() {
                out[k] = out[k] + c * xp;
            }
            xp = xp * x;
        }
    }

    /// The column polynomial `h_j(x) = f(x, j)` for process index `j`.
    pub fn col(&self, j: u64) -> Poly<F> {
        let mut out = Vec::with_capacity(self.degree + 1);
        self.col_into(j, &mut out);
        Poly::from_coeffs(out)
    }

    /// Writes the coefficients of `h_j(x) = f(x, j)` into `out` (cleared
    /// first, lowest degree first, untrimmed). Allocation-free once `out`
    /// has capacity `t + 1`.
    pub fn col_into(&self, j: u64, out: &mut Vec<F>) {
        let y = F::from_u64(j);
        out.clear();
        out.resize(self.degree + 1, F::ZERO);
        for (i, row) in self.coeffs.iter().enumerate() {
            let mut yp = F::ONE;
            for &c in row {
                out[i] = out[i] + c * yp;
                yp = yp * y;
            }
        }
    }

    /// The shared secret `f(0, 0)`.
    pub fn secret(&self) -> F {
        self.coeffs[0][0]
    }

    /// Reconstructs the unique degree-`(t, t)` bivariate polynomial from
    /// `t+1` row polynomials `(index, g_index)`, then returns it.
    ///
    /// Returns `None` if the rows are inconsistent with any degree-`(t,t)`
    /// bivariate polynomial (wrong degrees or duplicate indices).
    ///
    /// This implements SVSS `R` step 3's interpolation: given rows for
    /// `t+1` distinct indices, `f̄(x, y) = Σ_m L_m(x) · g_{k_m}(y)` where
    /// `L_m` are the Lagrange basis polynomials over the indices.
    pub fn interpolate_rows(t: usize, rows: &[(u64, Poly<F>)]) -> Option<Self> {
        if rows.len() != t + 1 {
            return None;
        }
        for (a, (ia, ga)) in rows.iter().enumerate() {
            if ga.degree().unwrap_or(0) > t {
                return None;
            }
            for (ib, _) in &rows[a + 1..] {
                if ia == ib {
                    return None;
                }
            }
        }
        let xs: Vec<F> = rows.iter().map(|&(i, _)| F::from_u64(i)).collect();
        // Barycentric weights over the row indices, with one batched
        // inversion instead of one Fermat inversion per row.
        let mut weights: Vec<F> = Vec::with_capacity(rows.len());
        for (m, &xm) in xs.iter().enumerate() {
            let mut d = F::ONE;
            for (j, &xj) in xs.iter().enumerate() {
                if j != m {
                    d = d * (xm - xj);
                }
            }
            weights.push(d);
        }
        crate::batch_invert(&mut weights);
        let mut coeffs = vec![vec![F::ZERO; t + 1]; t + 1];
        let mut basis: Vec<F> = Vec::with_capacity(t + 1);
        for (m, (_, g)) in rows.iter().enumerate() {
            // L_m(x) = w_m · prod_{j != m} (x - x_j) as coefficients.
            basis.clear();
            basis.push(F::ONE);
            for (j, &xj) in xs.iter().enumerate() {
                if j == m {
                    continue;
                }
                basis.push(F::ZERO);
                for k in (1..basis.len()).rev() {
                    let prev = basis[k - 1];
                    basis[k] = prev - xj * basis[k];
                }
                basis[0] = -xj * basis[0];
            }
            for (i, &bi) in basis.iter().enumerate() {
                let w = bi * weights[m];
                for (k, ck) in coeffs[i].iter_mut().enumerate() {
                    let gk = g.coeffs().get(k).copied().unwrap_or(F::ZERO);
                    *ck = *ck + w * gk;
                }
            }
        }
        Some(BiPoly { coeffs, degree: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf101, Gf61};
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn row_col_cross_consistency() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let f = BiPoly::random_with_secret(Gf61::from_u64(123), 3, &mut rng);
        for j in 1..=8u64 {
            for l in 1..=8u64 {
                assert_eq!(f.row(j).eval_at_index(l), f.eval_indices(j, l));
                assert_eq!(f.col(l).eval_at_index(j), f.eval_indices(j, l));
                assert_eq!(f.row(j).eval_at_index(l), f.col(l).eval_at_index(j));
            }
        }
    }

    #[test]
    fn secret_is_constant_term_of_diagonal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let f = BiPoly::random_with_secret(Gf61::from_u64(99), 2, &mut rng);
        assert_eq!(f.secret(), Gf61::from_u64(99));
        assert_eq!(f.eval(Gf61::ZERO, Gf61::ZERO), Gf61::from_u64(99));
        // g_0(0) = f(0,0); row(0) is the polynomial f(0, y).
        assert_eq!(f.row(0).eval(Gf61::ZERO), Gf61::from_u64(99));
    }

    #[test]
    fn interpolate_rows_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let t = 2usize;
        let f = BiPoly::random_with_secret(Gf61::from_u64(5), t, &mut rng);
        let rows: Vec<(u64, Poly<Gf61>)> = [2u64, 5, 9].iter().map(|&i| (i, f.row(i))).collect();
        let g = BiPoly::interpolate_rows(t, &rows).unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn interpolate_rows_wrong_count_or_dup_fails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let t = 2usize;
        let f = BiPoly::random_with_secret(Gf61::from_u64(5), t, &mut rng);
        let rows: Vec<(u64, Poly<Gf61>)> = [2u64, 5].iter().map(|&i| (i, f.row(i))).collect();
        assert!(BiPoly::interpolate_rows(t, &rows).is_none());
        let dup: Vec<(u64, Poly<Gf61>)> = [2u64, 2, 5].iter().map(|&i| (i, f.row(i))).collect();
        assert!(BiPoly::interpolate_rows(t, &dup).is_none());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_coeffs_rejects_ragged() {
        let _ = BiPoly::from_coeffs(vec![vec![Gf61::ZERO; 2], vec![Gf61::ZERO; 3]]);
    }

    proptest! {
        #[test]
        fn random_bipoly_rows_determine_it(seed in any::<u64>(), t in 1usize..4) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let f = BiPoly::random_with_secret(Gf101::from_u64(17), t, &mut rng);
            let rows: Vec<(u64, Poly<Gf101>)> =
                (1..=(t as u64 + 1)).map(|i| (i, f.row(i))).collect();
            let g = BiPoly::interpolate_rows(t, &rows).unwrap();
            prop_assert_eq!(g.secret(), Gf101::from_u64(17));
            for x in 0..6u64 {
                for y in 0..6u64 {
                    prop_assert_eq!(g.eval_indices(x, y), f.eval_indices(x, y));
                }
            }
        }

        #[test]
        fn rows_and_cols_have_degree_at_most_t(seed in any::<u64>(), t in 0usize..4) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let f = BiPoly::random_with_secret(Gf61::from_u64(3), t, &mut rng);
            for j in 1..=5u64 {
                prop_assert!(f.row(j).degree().unwrap_or(0) <= t);
                prop_assert!(f.col(j).degree().unwrap_or(0) <= t);
            }
        }
    }
}
